//! The incremental Sequitur algorithm, with windowed eviction.
//!
//! A faithful arena-based port of the classic doubly-linked-list
//! implementation (Nevill-Manning & Witten's `sequitur` C++): symbols live
//! in a slab with `u32` links, rules are circular lists closed by a *guard*
//! node, and a digram hash table maps each adjacent symbol pair to its
//! single allowed location.
//!
//! On top of the classic forward algorithm this module adds the streaming
//! machinery (paper §7 / ROADMAP item 2):
//!
//! * every `R0` symbol carries the **absolute token cursor** of the first
//!   terminal it derives, so the front of the start rule can be mapped back
//!   to stream positions at any time;
//! * [`Sequitur::evict_front`] retires tokens from the front of `R0` as
//!   they fall out of a caller-defined horizon — unlinking digrams,
//!   decrementing rule use-counts, inlining rules whose utility drops below
//!   two, and re-checking digram uniqueness where an unrolled occurrence
//!   exposes new adjacencies (which can *re-learn* rules);
//! * an optional **structural journal** ([`GrammarEvent`]) reporting every
//!   rule-occurrence birth and death with its absolute token span, so a
//!   caller can maintain a rule-density curve by ±1 interval deltas instead
//!   of recounting the grammar.

// gv-lint: allow(no-nondeterminism) imported for the lookup-only digram table below
use std::collections::HashMap;
use std::hash::BuildHasherDefault;
use std::hash::DefaultHasher;

/// Fixed-seed hasher for the digram table. The default `RandomState`
/// seeds per process, which makes `HashMap::capacity()` — and therefore
/// [`Sequitur::capacity_signature`] — vary across runs (tombstone decay
/// and rehash points depend on the hash values). Results never depend on
/// this table's order, but the capacity regression tests must be
/// reproducible, and a keyed hash buys nothing against internal `(Val,
/// Val)` keys.
type DigramHasher = BuildHasherDefault<DefaultHasher>;

use crate::grammar::{Grammar, GrammarRule, RuleId, Symbol};

/// Sentinel for "no node".
const NIL: u32 = u32::MAX;

/// Cursor sentinel for symbols inside rule bodies, whose absolute stream
/// position depends on which occurrence derives them.
const UNKNOWN: u64 = u64::MAX;

/// A symbol value inside the working grammar.
///
/// `Guard(r)` is the sentinel closing rule `r`'s circular list; guards never
/// participate in digrams.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Val {
    Term(u32),
    Rule(u32),
    Guard(u32),
}

impl Val {
    fn is_guard(self) -> bool {
        matches!(self, Val::Guard(_))
    }
}

#[derive(Debug, Clone, Copy)]
struct Node {
    prev: u32,
    next: u32,
    val: Val,
    /// Absolute token index of the first terminal this symbol derives.
    /// Known (`!= UNKNOWN`) for every symbol in `R0`; `UNKNOWN` inside rule
    /// bodies, where the position depends on the deriving occurrence.
    cursor: u64,
}

#[derive(Debug, Clone)]
struct RuleSlot {
    /// The guard node closing this rule's circular symbol list.
    guard: u32,
    /// How many non-terminal symbols reference this rule.
    uses: u32,
    /// Terminal expansion length of the body. Fixed at creation: every
    /// later rewrite of a body (substitution, inlining) preserves the
    /// expansion it derives.
    exp_len: u64,
    /// Arena indexes of the non-terminal nodes referencing this rule
    /// (`sites.len() == uses`). Lets eviction find the surviving reference
    /// of a rule whose utility dropped to one without scanning the arena.
    sites: Vec<u32>,
    alive: bool,
}

/// Cheap always-on accounting of one induction run: how much rule churn
/// the input caused and how large the digram index grew. Maintained as
/// plain integers alongside operations that already touch the same
/// structures, so there is no "instrumented" variant of the inducer —
/// callers that don't read the stats pay a handful of integer increments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InductionStats {
    /// Rules created, including `R0` and rules later deleted by utility.
    pub rules_created: u64,
    /// Rules deleted by the rule-utility constraint (inlined away).
    pub rules_deleted: u64,
    /// High-water mark of the digram hash table's entry count.
    pub peak_digram_entries: u64,
    /// Terminals retired from the front of `R0` by eviction.
    pub tokens_evicted: u64,
    /// Rules deleted *during eviction* (subset of `rules_deleted`).
    pub rules_evicted: u64,
    /// Rules created *during eviction* (subset of `rules_created`): an
    /// unrolled occurrence re-exposed a repeated digram that was
    /// re-compressed into a rule.
    pub rules_relearned: u64,
}

/// One structural change to the set of rule occurrences, reported through
/// the journal (see [`Sequitur::enable_journal`]).
///
/// Token positions are absolute stream cursors (counting every terminal
/// ever pushed, including evicted ones).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GrammarEvent {
    /// A rule occurrence materialized, covering
    /// `token_start..token_start + token_len`.
    Born {
        /// Absolute cursor of the occurrence's first terminal.
        token_start: u64,
        /// Terminal expansion length of the occurrence.
        token_len: u64,
    },
    /// A rule occurrence dissolved (inlined, unrolled, or evicted).
    Died {
        /// Absolute cursor of the occurrence's first terminal.
        token_start: u64,
        /// Terminal expansion length of the occurrence.
        token_len: u64,
    },
    /// A structural change happened at a site whose absolute position is
    /// unknown (inside a rule body). Occurrence bookkeeping derived from
    /// the journal must be recomputed from a fresh snapshot.
    Dirty,
}

/// Incremental Sequitur inducer over `u32` terminal tokens.
///
/// Feed tokens with [`Sequitur::push`], then call [`Sequitur::finish`]
/// (or use the [`Sequitur::induce`] convenience) to obtain the final
/// immutable [`Grammar`]. Streaming callers bound memory with
/// [`Sequitur::evict_front`] and observe structural churn through the
/// journal ([`Sequitur::enable_journal`]).
#[derive(Debug)]
pub struct Sequitur {
    nodes: Vec<Node>,
    free: Vec<u32>,
    rules: Vec<RuleSlot>,
    /// Dead rule slots available for reuse — without this, streaming rule
    /// churn would grow the `rules` arena linearly with stream length.
    free_rules: Vec<u32>,
    // gv-lint: allow(no-nondeterminism) classic Sequitur digram table: probed and mutated by key, never iterated on a result path; fixed-seed hasher keeps capacities reproducible
    digrams: HashMap<(Val, Val), u32, DigramHasher>,
    /// Number of *live* (retained) terminals.
    len: usize,
    /// Terminals evicted from the front; `evicted + len` = total pushed.
    evicted: u64,
    /// Monotone count of structural rewrites (substitutions + inlines) —
    /// the progress signal for the eviction repair loop.
    rewrites: u64,
    stats: InductionStats,
    journal_on: bool,
    journal: Vec<GrammarEvent>,
    /// Scratch for the eviction subtree walk (reused across calls).
    death_stack: Vec<(u32, u64)>,
    /// Scratch for unrolling a straddling occurrence (reused across calls).
    unroll_buf: Vec<Val>,
    /// Rules whose use count fell to exactly one mid-cascade; drained
    /// (inlined) before control returns to the caller so the utility
    /// invariant holds between public calls.
    pending_utility: Vec<u32>,
}

impl Default for Sequitur {
    fn default() -> Self {
        Self::new()
    }
}

impl Sequitur {
    /// Creates an inducer with an empty start rule `R0`.
    pub fn new() -> Self {
        let mut s = Self {
            nodes: Vec::new(),
            free: Vec::new(),
            rules: Vec::new(),
            free_rules: Vec::new(),
            // gv-lint: allow(no-nondeterminism) allocates the lookup-only digram table
            digrams: HashMap::default(),
            len: 0,
            evicted: 0,
            rewrites: 0,
            stats: InductionStats::default(),
            journal_on: false,
            journal: Vec::new(),
            death_stack: Vec::new(),
            unroll_buf: Vec::new(),
            pending_utility: Vec::new(),
        };
        s.new_rule(); // R0
        s
    }

    /// Induces a grammar from an entire token stream in one call.
    pub fn induce<I: IntoIterator<Item = u32>>(tokens: I) -> Grammar {
        let mut s = Self::new();
        for t in tokens {
            s.push(t);
        }
        s.finish()
    }

    /// Number of live (retained) terminals: total pushed minus evicted.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Terminals evicted from the front of the stream so far. The live
    /// suffix covers absolute cursors `tokens_evicted()..tokens_evicted()
    /// + len()`.
    pub fn tokens_evicted(&self) -> u64 {
        self.evicted
    }

    /// Accounting for the induction so far (see [`InductionStats`]).
    pub fn stats(&self) -> InductionStats {
        self.stats
    }

    /// `true` when no live terminal remains.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Turns on the structural journal: every rule-occurrence birth/death
    /// from now on is recorded as a [`GrammarEvent`] for the caller to
    /// drain with [`Sequitur::drain_journal`]. Off by default — the batch
    /// path pays only an untaken branch.
    pub fn enable_journal(&mut self) {
        self.journal_on = true;
    }

    /// Moves all pending journal events into `into` (appending), leaving
    /// the internal buffer empty but with its capacity retained.
    pub fn drain_journal(&mut self, into: &mut Vec<GrammarEvent>) {
        // gv-lint: allow(alloc-reachability) append moves the retained journal buffer wholesale; capacity_signature tests pin the zero-growth steady state
        into.append(&mut self.journal);
    }

    /// Capacities of every internal buffer — for bounded-memory tests: on
    /// a horizon-evicted stream the signature must freeze after warmup.
    pub fn capacity_signature(&self) -> Vec<usize> {
        vec![
            self.nodes.capacity(),
            self.free.capacity(),
            self.rules.capacity(),
            self.free_rules.capacity(),
            self.digrams.capacity(),
            self.journal.capacity(),
            self.death_stack.capacity(),
            self.unroll_buf.capacity(),
            self.pending_utility.capacity(),
        ]
    }

    /// Appends one terminal token to `R0` and restores the invariants.
    pub fn push(&mut self, token: u32) {
        self.len += 1;
        let node = self.alloc(Val::Term(token));
        self.nodes[node as usize].cursor = self.evicted + self.len as u64 - 1;
        let guard = self.rules[0].guard;
        let last = self.nodes[guard as usize].prev;
        self.insert_after(last, node);
        if self.nodes[node as usize].prev != guard {
            let p = self.nodes[node as usize].prev;
            self.check(p);
            self.drain_utility();
        }
    }

    /// Extracts the current grammar without consuming the inducer —
    /// the streaming/early-detection entry point (paper §7 future work):
    /// push tokens as they arrive, snapshot whenever a decision is needed.
    /// After eviction the grammar describes the retained token suffix
    /// (`input_len == len()`).
    pub fn snapshot(&self) -> Grammar {
        self.extract()
    }

    /// Finalizes induction and extracts the immutable [`Grammar`].
    pub fn finish(self) -> Grammar {
        self.extract()
    }

    fn extract(&self) -> Grammar {
        let mut rules: Vec<Option<GrammarRule>> = Vec::with_capacity(self.rules.len());
        // Compact rule ids: map arena rule index → dense grammar id in slot
        // order (R0 first), skipping deleted rules. Slot order is
        // deterministic: it differs from creation order only when eviction
        // recycled a slot, which is itself a deterministic event.
        let mut id_map: Vec<Option<RuleId>> = vec![None; self.rules.len()];
        let mut next_id = 0u32;
        for (i, slot) in self.rules.iter().enumerate() {
            if slot.alive {
                id_map[i] = Some(RuleId(next_id));
                next_id += 1;
            }
        }
        for (i, slot) in self.rules.iter().enumerate() {
            if !slot.alive {
                continue;
            }
            let mut rhs = Vec::new();
            let guard = slot.guard;
            let mut cur = self.nodes[guard as usize].next;
            while cur != guard {
                let val = self.nodes[cur as usize].val;
                rhs.push(match val {
                    Val::Term(t) => Symbol::Terminal(t),
                    Val::Rule(r) => {
                        // gv-lint: allow(no-unwrap-in-lib) rule_uses bookkeeping guarantees referenced rules stay live until the referencing body is rewritten
                        Symbol::Rule(id_map[r as usize].expect("live rule referenced a dead rule"))
                    }
                    // gv-lint: allow(panic-reachability) guards delimit rule bodies; a guard inside a body is a broken induction invariant
                    Val::Guard(_) => unreachable!("guard inside rule body"),
                });
                cur = self.nodes[cur as usize].next;
            }
            rules.push(Some(GrammarRule {
                // gv-lint: allow(no-unwrap-in-lib) id_map[i] was assigned for every live slot in the numbering pass just above
                id: id_map[i].unwrap(),
                rhs,
                rule_uses: slot.uses as usize,
            }));
        }
        Grammar::from_rules(rules.into_iter().flatten().collect(), self.len)
    }

    // ----- windowed eviction ----------------------------------------------

    /// Retires the first `count` live terminals from the front of `R0`
    /// (clamped to [`Sequitur::len`]). Whole occurrences that fall inside
    /// the evicted prefix are deleted (decrementing rule use-counts and
    /// inlining rules whose utility drops below two); an occurrence
    /// straddling the cut is unrolled — replaced by a copy of its body —
    /// and the adjacencies this exposes are re-checked for digram
    /// uniqueness, which can re-form ("re-learn") rules over the retained
    /// suffix. The digram index is kept consistent throughout; with the
    /// journal enabled, every occurrence birth/death is reported.
    pub fn evict_front(&mut self, count: usize) {
        let count = count.min(self.len);
        if count == 0 {
            return;
        }
        let cutoff = self.evicted + count as u64;
        let created_before = self.stats.rules_created;
        let deleted_before = self.stats.rules_deleted;
        let rewrites_before = self.rewrites;
        // Unrolls and rule deaths can leave duplicate digrams pending
        // anywhere their splices touched; a fixpoint repair pass restores
        // uniqueness afterwards. Plain terminal evictions repair locally.
        let mut needs_scan = false;
        loop {
            let guard = self.rules[0].guard;
            let front = self.next(guard);
            if front == guard {
                break;
            }
            let c = self.nodes[front as usize].cursor;
            debug_assert_ne!(c, UNKNOWN, "R0 symbol without a cursor");
            if c >= cutoff {
                break;
            }
            match self.val(front) {
                Val::Term(_) => {
                    self.delete_symbol(front);
                    self.evicted += 1;
                    self.len -= 1;
                    self.stats.tokens_evicted += 1;
                    // If the deleted node anchored the index entry for a
                    // run digram (`333…`), its overlapping twin — exactly
                    // the new front adjacency — is now unindexed.
                    let nf = self.next(guard);
                    if nf != guard {
                        self.check(nf);
                    }
                }
                Val::Rule(r) => {
                    let span = self.rules[r as usize].exp_len;
                    if c + span <= cutoff {
                        // The whole occurrence falls out of the horizon: it
                        // and every occurrence nested under it die.
                        self.journal_subtree_deaths(r, c);
                        self.delete_symbol(front);
                        self.evicted += span;
                        self.len -= span as usize;
                        self.stats.tokens_evicted += span;
                        self.enforce_utility(r);
                        needs_scan = true;
                    } else {
                        // Straddles the cut: unroll one level. The loop
                        // then continues on the copies, evicting or
                        // unrolling them in turn.
                        self.unroll_front(front, r, c);
                        needs_scan = true;
                    }
                }
                // gv-lint: allow(panic-reachability) guard values never appear in R0; hitting one is a broken induction invariant
                Val::Guard(_) => unreachable!("guard value inside R0"),
            }
        }
        // Unroll/subtree-death splices always need the scan; so does a
        // plain terminal eviction whose front `check` cascaded into a
        // structural rewrite, which can leave several duplicates pending
        // at once. The utility drain runs after uniqueness is restored
        // (its inlines re-check their own seams, so one round suffices).
        if needs_scan || self.rewrites != rewrites_before {
            self.repair_all();
        }
        self.drain_utility();
        self.stats.rules_relearned += self.stats.rules_created - created_before;
        self.stats.rules_evicted += self.stats.rules_deleted - deleted_before;
    }

    /// Inlines every rule whose use count fell to one during the cascades
    /// since the last drain. The classic algorithm enforces utility inline
    /// (the digram consumed by a substitution reappears as the boundary of
    /// the new rule's body, where it is checked) — but a cascade can also
    /// consume the rule that owed the check, and post-eviction grammar
    /// shapes reach that path from a plain `push`. Deferring to a queue
    /// drained between public calls closes the gap without rewriting nodes
    /// an in-flight cascade still holds. Entries are re-validated at pop
    /// time: the rule may have been re-used, inlined, or its slot recycled
    /// meanwhile, and any *live* rule at one use deserves the inline no
    /// matter which generation queued it. Terminates: each productive pop
    /// deletes a rule, and new entries require structural rewrites, which
    /// strictly shrink the grammar.
    fn drain_utility(&mut self) {
        while let Some(r) = self.pending_utility.pop() {
            self.enforce_utility(r);
        }
    }

    /// With the journal on, records the death of rule `r`'s occurrence at
    /// absolute cursor `base` and of every occurrence nested below it —
    /// eviction of a whole subtree removes all of them from the derivation.
    fn journal_subtree_deaths(&mut self, r: u32, base: u64) {
        if !self.journal_on {
            return;
        }
        self.journal.push(GrammarEvent::Died {
            token_start: base,
            token_len: self.rules[r as usize].exp_len,
        });
        let mut stack = std::mem::take(&mut self.death_stack);
        stack.push((r, base));
        while let Some((q, qbase)) = stack.pop() {
            let guard = self.rules[q as usize].guard;
            let mut cur = self.next(guard);
            let mut off = qbase;
            while cur != guard {
                match self.val(cur) {
                    Val::Term(_) => off += 1,
                    Val::Rule(p) => {
                        let len = self.rules[p as usize].exp_len;
                        self.journal.push(GrammarEvent::Died {
                            token_start: off,
                            token_len: len,
                        });
                        stack.push((p, off));
                        off += len;
                    }
                    // gv-lint: allow(panic-reachability) guards delimit rule bodies; a guard inside a body is a broken induction invariant
                    Val::Guard(_) => unreachable!("guard inside rule body"),
                }
                cur = self.next(cur);
            }
        }
        self.death_stack = stack;
    }

    /// Replaces the front non-terminal `front` (rule `r`, cursor `c`) with
    /// a fresh copy of `r`'s body, assigning cursors cumulatively. The body
    /// itself is shared with other occurrences and stays untouched. The new
    /// adjacencies are *not* digram-checked here — the caller re-checks
    /// them after the eviction loop ([`Sequitur::repair_all`]).
    fn unroll_front(&mut self, front: u32, r: u32, c: u64) {
        if self.journal_on {
            self.journal.push(GrammarEvent::Died {
                token_start: c,
                token_len: self.rules[r as usize].exp_len,
            });
        }
        let mut body = std::mem::take(&mut self.unroll_buf);
        body.clear();
        let guard_r = self.rules[r as usize].guard;
        let mut cur = self.next(guard_r);
        while cur != guard_r {
            body.push(self.val(cur));
            cur = self.next(cur);
        }
        // Drop the reference (decrements `uses[r]`, fixes digram entries).
        self.delete_symbol(front);
        // Splice the copies in at the front, tracking cursors.
        let mut tail = self.rules[0].guard;
        let mut off = c;
        for &v in &body {
            let n = self.alloc(v);
            self.nodes[n as usize].cursor = off;
            off += self.exp_len_of(v);
            if let Val::Rule(q) = v {
                self.rules[q as usize].uses += 1;
                self.rules[q as usize].sites.push(n);
            }
            self.insert_after(tail, n);
            tail = n;
        }
        self.unroll_buf = body;
        // The dropped reference may have brought `r` down to one use.
        self.enforce_utility(r);
    }

    /// Inlines rule `r` if its utility dropped below two. At one use the
    /// surviving reference site (from the slot's site list) is expanded and
    /// the adjacencies the splice exposes are re-checked for digram
    /// uniqueness. At zero uses — possible when utility enforcement was
    /// deferred past the eviction of the rule's last reference — the rule
    /// is unreachable: its body is dismantled outright, with inner rules
    /// losing a reference each (re-entering the utility queue as needed).
    fn enforce_utility(&mut self, r: u32) {
        if !self.rules[r as usize].alive {
            return;
        }
        match self.rules[r as usize].uses {
            0 => {
                let guard = self.rules[r as usize].guard;
                let mut cur = self.next(guard);
                while cur != guard {
                    let nx = self.next(cur);
                    self.delete_symbol(cur);
                    cur = nx;
                }
                self.rules[r as usize].alive = false;
                self.stats.rules_deleted += 1;
                self.free_rules.push(r);
                self.release(guard);
            }
            1 => {
                let site = self.rules[r as usize].sites[0];
                let (left, last) = self.expand(site, false);
                self.check(left);
                // `last` may have been rewritten by the cascade above; a
                // stale or recycled node yields either no digram or a valid
                // one, so the extra check is at worst redundant work.
                self.check(last);
            }
            _ => {}
        }
    }

    /// Re-establishes digram uniqueness and full index coverage across the
    /// whole grammar after unroll/inline splices left adjacencies unindexed
    /// or duplicated. Each pass `check`s every adjacency of every live
    /// rule; any rewrite (substitution or inline, including rule
    /// re-learning) restarts the pass. Terminates because rewrites strictly
    /// shrink the grammar by the classic Sequitur argument. Cost is
    /// O(grammar size) — bounded by the horizon, independent of stream
    /// length — and is only paid on evictions with structural events.
    fn repair_all(&mut self) {
        loop {
            let before = self.rewrites;
            'rules: for ri in 0..self.rules.len() {
                if !self.rules[ri].alive {
                    continue;
                }
                let guard = self.rules[ri].guard;
                let mut cur = self.next(guard);
                while cur != guard {
                    let next = self.next(cur);
                    self.check(cur);
                    if self.rewrites != before {
                        break 'rules;
                    }
                    cur = next;
                }
            }
            if self.rewrites == before {
                return;
            }
        }
    }

    /// Terminal expansion length of a symbol value.
    fn exp_len_of(&self, v: Val) -> u64 {
        match v {
            Val::Term(_) => 1,
            Val::Rule(r) => self.rules[r as usize].exp_len,
            Val::Guard(_) => 0,
        }
    }

    /// Deep consistency check of the digram index against the arena — the
    /// mid-stream invariant eviction must preserve. Returns sorted
    /// human-readable problems (empty = consistent): every adjacency in a
    /// live rule must be indexed (at itself or at an overlapping twin), and
    /// every index entry must point at a live adjacency with its key.
    pub fn check_index_consistency(&self) -> Vec<String> {
        let mut problems = Vec::new();
        for slot in self.rules.iter().filter(|s| s.alive) {
            let guard = slot.guard;
            let mut cur = self.next(guard);
            while cur != guard {
                if let Some(key) = self.digram_key(cur) {
                    match self.digrams.get(&key) {
                        None => problems.push(format!(
                            "adjacency {key:?} at node {cur} is not in the digram index"
                        )),
                        Some(&at) => {
                            if self.digram_key(at) != Some(key) {
                                problems.push(format!(
                                    "digram index for {key:?} points at node {at} which no longer holds it"
                                ));
                            }
                        }
                    }
                }
                cur = self.next(cur);
            }
        }
        for (&key, &at) in self.digrams.iter() {
            if self.digram_key(at) != Some(key) {
                problems.push(format!("digram index entry {key:?} -> node {at} is stale"));
            }
        }
        problems.sort();
        problems
    }

    // ----- arena plumbing -------------------------------------------------

    fn alloc(&mut self, val: Val) -> u32 {
        if let Some(idx) = self.free.pop() {
            self.nodes[idx as usize] = Node {
                prev: NIL,
                next: NIL,
                val,
                cursor: UNKNOWN,
            };
            idx
        } else {
            let idx = self.nodes.len() as u32;
            self.nodes.push(Node {
                prev: NIL,
                next: NIL,
                val,
                cursor: UNKNOWN,
            });
            idx
        }
    }

    fn release(&mut self, idx: u32) {
        self.nodes[idx as usize] = Node {
            prev: NIL,
            next: NIL,
            val: Val::Guard(u32::MAX),
            cursor: UNKNOWN,
        };
        self.free.push(idx);
    }

    fn val(&self, idx: u32) -> Val {
        self.nodes[idx as usize].val
    }

    fn next(&self, idx: u32) -> u32 {
        self.nodes[idx as usize].next
    }

    fn prev(&self, idx: u32) -> u32 {
        self.nodes[idx as usize].prev
    }

    fn new_rule(&mut self) -> u32 {
        self.stats.rules_created += 1;
        if let Some(rule_id) = self.free_rules.pop() {
            let guard = self.alloc(Val::Guard(rule_id));
            self.nodes[guard as usize].prev = guard;
            self.nodes[guard as usize].next = guard;
            let slot = &mut self.rules[rule_id as usize];
            slot.guard = guard;
            slot.uses = 0;
            slot.exp_len = 0;
            slot.sites.clear();
            slot.alive = true;
            return rule_id;
        }
        let rule_id = self.rules.len() as u32;
        let guard = self.alloc(Val::Guard(rule_id));
        // Circular: an empty rule's guard points at itself.
        self.nodes[guard as usize].prev = guard;
        self.nodes[guard as usize].next = guard;
        self.rules.push(RuleSlot {
            guard,
            uses: 0,
            exp_len: 0,
            sites: Vec::new(),
            alive: true,
        });
        rule_id
    }

    /// Points the digram index at `at`, tracking the table's high-water
    /// mark (every insertion funnels through here).
    #[inline]
    fn index_digram(&mut self, key: (Val, Val), at: u32) {
        self.digrams.insert(key, at);
        let entries = self.digrams.len() as u64;
        if entries > self.stats.peak_digram_entries {
            self.stats.peak_digram_entries = entries;
        }
    }

    fn digram_key(&self, first: u32) -> Option<(Val, Val)> {
        let n = self.next(first);
        if n == NIL {
            return None;
        }
        let a = self.val(first);
        let b = self.val(n);
        if a.is_guard() || b.is_guard() {
            return None;
        }
        Some((a, b))
    }

    /// Removes the digram starting at `first` from the index, if the index
    /// currently points at `first`.
    fn delete_digram(&mut self, first: u32) {
        if let Some(key) = self.digram_key(first) {
            if self.digrams.get(&key) == Some(&first) {
                self.digrams.remove(&key);
            }
        }
    }

    /// Links `left` → `right`, maintaining the digram index (including the
    /// classic "triples" adjustment for runs like `aaa`).
    fn join(&mut self, left: u32, right: u32) {
        if self.next(left) != NIL {
            self.delete_digram(left);

            // Triples fix-ups, as in the original implementation: when a
            // symbol sits between two copies of itself, make sure the index
            // points at a digram that still exists after the relink.
            let rp = self.prev(right);
            let rn = self.next(right);
            if rp != NIL
                && rn != NIL
                && self.val(right) == self.val(rp)
                && self.val(right) == self.val(rn)
            {
                if let Some(key) = self.digram_key(right) {
                    self.index_digram(key, right);
                }
            }
            let lp = self.prev(left);
            let ln = self.next(left);
            if lp != NIL
                && ln != NIL
                && self.val(left) == self.val(lp)
                && self.val(left) == self.val(ln)
            {
                if let Some(key) = self.digram_key(lp) {
                    self.index_digram(key, lp);
                }
            }
        }
        self.nodes[left as usize].next = right;
        self.nodes[right as usize].prev = left;
    }

    /// Inserts node `y` right after node `x`.
    fn insert_after(&mut self, x: u32, y: u32) {
        let xn = self.next(x);
        self.join(y, xn);
        self.join(x, y);
    }

    /// Unlinks and frees a symbol node, updating the digram index and rule
    /// use counts (the C++ destructor).
    fn delete_symbol(&mut self, idx: u32) {
        let p = self.prev(idx);
        let n = self.next(idx);
        self.join(p, n);
        if !self.val(idx).is_guard() {
            self.delete_digram(idx);
            if let Val::Rule(r) = self.val(idx) {
                self.rules[r as usize].uses -= 1;
                self.remove_site(r, idx);
                // This is the only place a live rule's use count can reach
                // one; queue it for the utility drain at cascade end. A
                // direct inline here could rewrite nodes the caller still
                // holds, so enforcement is deferred.
                if self.rules[r as usize].uses == 1 && self.rules[r as usize].alive {
                    // gv-lint: allow(alloc-reachability) pending_utility retains its capacity across cascades and is bounded by the live rule count
                    self.pending_utility.push(r);
                }
            }
        }
        self.release(idx);
    }

    /// Unregisters a reference site of rule `r` (companion of the `uses`
    /// decrement).
    fn remove_site(&mut self, r: u32, node: u32) {
        let sites = &mut self.rules[r as usize].sites;
        if let Some(pos) = sites.iter().position(|&s| s == node) {
            sites.swap_remove(pos);
        } else {
            debug_assert!(false, "site list out of sync for rule {r}");
        }
    }

    /// Enforces digram uniqueness for the digram starting at `first`.
    /// Returns `true` when the grammar changed (or the digram was already
    /// indexed elsewhere).
    fn check(&mut self, first: u32) -> bool {
        let key = match self.digram_key(first) {
            Some(k) => k,
            None => return false,
        };
        match self.digrams.get(&key).copied() {
            None => {
                self.index_digram(key, first);
                false
            }
            Some(existing) => {
                // Overlapping digrams (runs like `aaa`) are not duplicates.
                // The forward path only ever sees `next(existing) == first`
                // (new digram right of the indexed one, index already at
                // the leftmost), but eviction repair also checks digrams
                // *left* of an indexed twin — re-anchor leftmost then, so a
                // later non-overlapping run digram can match against it.
                if existing == first || self.next(existing) == first {
                    return true;
                }
                if self.next(first) == existing {
                    self.index_digram(key, first);
                    return true;
                }
                self.match_digrams(first, existing);
                true
            }
        }
    }

    /// Rule id when the digram starting at `first` spans an entire rule
    /// body (its neighbors are the same guard). `R0` is excluded: reusing
    /// the start rule as a non-terminal would be circular.
    fn whole_body_rule(&self, first: u32) -> Option<u32> {
        match (
            self.val(self.prev(first)),
            self.val(self.next(self.next(first))),
        ) {
            (Val::Guard(a), Val::Guard(b)) if a == b && a != 0 => Some(a),
            _ => None,
        }
    }

    /// Deals with a digram at `new` that duplicates the indexed digram at
    /// `existing`: reuse the rule when either side is a complete rule body
    /// (merging the rules when both are), otherwise create a fresh rule
    /// for the pair.
    ///
    /// The forward path only ever produces the `existing`-side reuse (a
    /// freshly formed digram can't be an old complete body); the
    /// `new`-side and both-sides cases arise during eviction repair, where
    /// several duplicates can be pending at once. Substituting *inside* a
    /// two-symbol body would shrink it below the minimum rule length, so
    /// those bodies are reused, never rewritten.
    fn match_digrams(&mut self, new: u32, existing: u32) {
        let new_whole = self.whole_body_rule(new);
        let exist_whole = self.whole_body_rule(existing);
        let _rule_id = if let Some(re) = exist_whole {
            if let Some(rn) = new_whole {
                // Two distinct rules with identical bodies: fold `rn`'s
                // references into `re` and dismantle `rn`.
                self.merge_rules(rn, re);
                re
            } else {
                // `existing` spans an entire rule body: reuse that rule.
                self.substitute(new, re);
                re
            }
        } else if let Some(rn) = new_whole {
            // Mirror image: `new` is a complete body, `existing` is not.
            // Compress `existing` with `rn`, then re-anchor the index at
            // the surviving body digram (the raw substitution just removed
            // the entry anchored at `existing`).
            let q = self.substitute_raw(existing, rn);
            if let Some(key) = self.digram_key(new) {
                self.index_digram(key, new);
            }
            self.seam_check(q);
            rn
        } else {
            // Create a new rule holding a copy of the digram.
            let r = self.new_rule();
            let a = self.val(new);
            let b = self.val(self.next(new));
            self.rules[r as usize].exp_len = self.exp_len_of(a) + self.exp_len_of(b);
            let guard = self.rules[r as usize].guard;
            let na = self.alloc(a);
            if let Val::Rule(ra) = a {
                self.rules[ra as usize].uses += 1;
                self.rules[ra as usize].sites.push(na);
            }
            self.insert_after(guard, na);
            let nb = self.alloc(b);
            if let Val::Rule(rb) = b {
                self.rules[rb as usize].uses += 1;
                self.rules[rb as usize].sites.push(nb);
            }
            self.insert_after(na, nb);

            // Both substitutions run *raw* (no seam checks in between):
            // a seam check after the first substitution can cascade into
            // the region around `new` and rewrite it, leaving the second
            // substitution operating on released nodes. That can't happen
            // in the forward path (only one duplicate exists at a time),
            // but eviction repair fixes several pending duplicates in a
            // row. The deferred seam checks below are safe: a seam node
            // consumed by an earlier cascade yields no digram or a valid
            // one, never a dangling mutation.
            let q1 = self.substitute_raw(existing, r);
            let q2 = self.substitute_raw(new, r);

            // Index the digram that now constitutes the rule body.
            let body_first = self.next(self.rules[r as usize].guard);
            if let Some(key) = self.digram_key(body_first) {
                self.index_digram(key, body_first);
            }

            self.seam_check(q1);
            self.seam_check(q2);
            r
        };

        // Rule utility is NOT enforced here, unlike the classic code, which
        // inlines a boundary symbol of `rule_id` whose rule just dropped to
        // one use. That inline force-indexes its splice seams, assuming at
        // most one duplicate digram is pending — an assumption eviction
        // breaks (an inlined body can re-expose a digram that already lives
        // in some *other* rule, and force-indexing shadows that twin
        // unchecked). And the cascades above may have consumed `rule_id`
        // itself, in which case no boundary check here could run at all.
        // Instead, every drop to one use is queued at the decrement site
        // (see `delete_symbol`) and drained with full seam checks once the
        // whole cascade has settled.
    }

    /// Folds rule `rn` into rule `re`, which hold identical two-symbol
    /// bodies (only possible transiently during eviction repair): every
    /// reference to `rn` is rewritten in place to reference `re`, then
    /// `rn`'s body is dismantled. Occurrence spans are unchanged (equal
    /// expansion lengths at the same positions), so no journal events are
    /// needed — the density curve is unaffected.
    fn merge_rules(&mut self, rn: u32, re: u32) {
        debug_assert_ne!(rn, re, "a digram cannot duplicate itself");
        debug_assert_eq!(
            self.rules[rn as usize].exp_len,
            self.rules[re as usize].exp_len
        );
        self.rewrites += 1;
        let sites = std::mem::take(&mut self.rules[rn as usize].sites);
        for &s in &sites {
            // Clean the index entries whose keys contain `Rule(rn)` before
            // rewriting the value; both adjacencies re-enter via the seam
            // checks below.
            self.delete_digram(s);
            let p = self.prev(s);
            self.delete_digram(p);
            self.nodes[s as usize].val = Val::Rule(re);
            self.rules[re as usize].uses += 1;
            self.rules[re as usize].sites.push(s);
        }
        self.rules[rn as usize].uses = 0;
        // Dismantle `rn`'s body copy; inner rules lose one reference each
        // (they are still referenced by `re`'s identical body).
        let guard = self.rules[rn as usize].guard;
        let mut inner_rules = [None, None];
        let mut cur = self.next(guard);
        let mut i = 0;
        while cur != guard {
            let nx = self.next(cur);
            if let Val::Rule(x) = self.val(cur) {
                inner_rules[i.min(1)] = Some(x);
            }
            i += 1;
            self.delete_symbol(cur);
            cur = nx;
        }
        self.rules[rn as usize].alive = false;
        self.stats.rules_deleted += 1;
        self.free_rules.push(rn);
        self.release(guard);
        for x in inner_rules.into_iter().flatten() {
            self.enforce_utility(x);
        }
        // Restore uniqueness around every rewritten site.
        for &s in &sites {
            if self.next(s) != NIL {
                let p = self.prev(s);
                self.seam_check(p);
                self.seam_check(s);
            }
        }
    }

    /// Replaces the two symbols starting at `first` with a reference to
    /// rule `r`, then re-checks the digrams around the new non-terminal.
    /// The occurrence algebra: the two replaced symbols persist positionally
    /// through `r`'s body, so the net change is exactly one new occurrence
    /// of `r` — journaled as a birth when the site's cursor is known.
    fn substitute(&mut self, first: u32, r: u32) {
        let q = self.substitute_raw(first, r);
        self.seam_check(q);
    }

    /// The structural half of [`Sequitur::substitute`]: performs the
    /// replacement and returns the node preceding the new non-terminal,
    /// leaving the seam digram checks to the caller.
    fn substitute_raw(&mut self, first: u32, r: u32) -> u32 {
        self.rewrites += 1;
        let cursor = self.nodes[first as usize].cursor;
        if self.journal_on {
            if cursor != UNKNOWN {
                self.journal.push(GrammarEvent::Born {
                    token_start: cursor,
                    token_len: self.rules[r as usize].exp_len,
                });
            } else {
                self.journal.push(GrammarEvent::Dirty);
            }
        }
        let q = self.prev(first);
        let second = self.next(first);
        self.delete_symbol(first);
        self.delete_symbol(second);
        let nt = self.alloc(Val::Rule(r));
        self.nodes[nt as usize].cursor = cursor;
        self.rules[r as usize].uses += 1;
        self.rules[r as usize].sites.push(nt);
        self.insert_after(q, nt);
        q
    }

    /// The classic post-substitution check pair: enforce uniqueness for
    /// the digram at `q`, and if that digram was freshly indexed, for the
    /// one after it. Tolerates `q` having been consumed by an earlier
    /// cascade (a released node has no digram and `NIL` links).
    fn seam_check(&mut self, q: u32) {
        if self.next(q) == NIL {
            return;
        }
        if !self.check(q) {
            let qn = self.next(q);
            if qn != NIL {
                self.check(qn);
            }
        }
    }

    /// Inlines the body of the once-used rule referenced by the
    /// non-terminal node `nt`, deleting the rule (utility enforcement).
    /// With `reindex` the boundary digrams the splice creates are force-
    /// indexed (the classic behaviour, correct in the forward path);
    /// eviction passes `false` and runs full uniqueness checks instead.
    /// Returns `(left, last)` — the nodes around the splice seams.
    fn expand(&mut self, nt: u32, reindex: bool) -> (u32, u32) {
        self.rewrites += 1;
        let left = self.prev(nt);
        let right = self.next(nt);
        let r = match self.val(nt) {
            Val::Rule(r) => r,
            // gv-lint: allow(panic-reachability) expand is only ever called on rule symbols; anything else is a broken induction invariant
            _ => unreachable!("expand called on a non-rule symbol"),
        };
        let base = self.nodes[nt as usize].cursor;
        if self.journal_on {
            if base != UNKNOWN {
                self.journal.push(GrammarEvent::Died {
                    token_start: base,
                    token_len: self.rules[r as usize].exp_len,
                });
            } else {
                self.journal.push(GrammarEvent::Dirty);
            }
        }
        let guard = self.rules[r as usize].guard;
        let first = self.next(guard);
        let last = self.prev(guard);
        debug_assert_ne!(first, guard, "expanding an empty rule");

        // Spliced body symbols inherit absolute cursors when the site has
        // one (an `R0` splice); inside another body they stay unknown.
        if base != UNKNOWN {
            let mut cur = first;
            let mut off = base;
            loop {
                self.nodes[cur as usize].cursor = off;
                off += self.exp_len_of(self.val(cur));
                if cur == last {
                    break;
                }
                cur = self.next(cur);
            }
        }

        // Remove the digram entries anchored at `nt` and at `left` while
        // `nt` still holds its value — after the release below, `join`
        // would compute `left`'s old key with a guard in it and skip the
        // removal, leaving a stale `(val(left), Rule(r))` entry behind.
        self.delete_digram(nt);
        self.delete_digram(left);
        self.rules[r as usize].uses -= 1;
        self.remove_site(r, nt);
        debug_assert_eq!(self.rules[r as usize].uses, 0);
        self.rules[r as usize].alive = false;
        self.stats.rules_deleted += 1;
        self.free_rules.push(r);
        self.release(nt);
        self.release(guard);

        self.join(left, first);
        self.join(last, right);

        if reindex {
            // The classic implementation indexes the freshly created
            // trailing digram directly (overwriting any stale entry). We do
            // the same for the leading digram, which arises when expanding a
            // rule's *last* symbol (where `left` is a real symbol, not the
            // guard).
            if let Some(key) = self.digram_key(last) {
                self.index_digram(key, last);
            }
            if let Some(key) = self.digram_key(left) {
                self.index_digram(key, left);
            }
        }
        (left, last)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grammar::Symbol;

    fn letters(s: &str) -> Vec<u32> {
        s.bytes().map(|b| (b - b'a') as u32).collect()
    }

    #[test]
    fn empty_input_gives_empty_r0() {
        let g = Sequitur::induce(std::iter::empty());
        assert_eq!(g.num_rules(), 1);
        assert!(g.rule(g.r0_id()).rhs.is_empty());
        assert_eq!(g.input_len(), 0);
    }

    #[test]
    fn single_token() {
        let g = Sequitur::induce([42u32]);
        assert_eq!(g.num_rules(), 1);
        assert_eq!(g.rule(g.r0_id()).rhs, vec![Symbol::Terminal(42)]);
    }

    #[test]
    fn no_repetition_no_rules() {
        let g = Sequitur::induce(letters("abcdefg"));
        assert_eq!(g.num_rules(), 1);
        assert_eq!(g.rule(g.r0_id()).rhs.len(), 7);
    }

    #[test]
    fn abab_creates_one_rule() {
        let g = Sequitur::induce(letters("abab"));
        assert_eq!(g.num_rules(), 2);
        let r0 = g.rule(g.r0_id());
        assert_eq!(r0.rhs.len(), 2);
        // Both R0 symbols are the same rule, used twice.
        match (&r0.rhs[0], &r0.rhs[1]) {
            (Symbol::Rule(a), Symbol::Rule(b)) => {
                assert_eq!(a, b);
                assert_eq!(g.rule(*a).rule_uses, 2);
                assert_eq!(g.expand_rule(*a), letters("ab"));
            }
            other => panic!("unexpected R0 shape: {other:?}"),
        }
    }

    #[test]
    fn paper_motivating_example() {
        // §3: S = abc abc cba xxx abc abc cba, over word-tokens
        // {abc→0, cba→1, xxx→2}: 0 0 1 2 0 0 1.
        let g = Sequitur::induce([0u32, 0, 1, 2, 0, 0, 1]);
        let r0 = g.rule(g.r0_id());
        // Expect R0 → R1 xxx R1 with R1 → 0 0 1 (possibly via nesting).
        assert_eq!(g.expand_rule(g.r0_id()), vec![0, 0, 1, 2, 0, 0, 1]);
        assert_eq!(r0.rhs.len(), 3);
        assert!(matches!(r0.rhs[1], Symbol::Terminal(2)));
        match (&r0.rhs[0], &r0.rhs[2]) {
            (Symbol::Rule(a), Symbol::Rule(b)) => {
                assert_eq!(a, b);
                assert_eq!(g.expand_rule(*a), vec![0, 0, 1]);
            }
            other => panic!("unexpected R0 shape: {other:?}"),
        }
    }

    #[test]
    fn rule_reuse_nested() {
        // Classic: "abcdbcabcdbc" → hierarchy with nested rules.
        let g = Sequitur::induce(letters("abcdbcabcdbc"));
        assert_eq!(
            g.expand_rule(g.r0_id()),
            letters("abcdbc")
                .iter()
                .chain(letters("abcdbc").iter())
                .copied()
                .collect::<Vec<_>>()
        );
        // All rules except R0 used at least twice (utility invariant).
        for rule in g.rules() {
            if rule.id != g.r0_id() {
                assert!(
                    rule.rule_uses >= 2,
                    "rule {:?} used {}",
                    rule.id,
                    rule.rule_uses
                );
            }
        }
    }

    #[test]
    fn triples_run() {
        // Runs of one symbol exercise the overlapping-digram guard.
        for n in 2..=40 {
            let input = vec![7u32; n];
            let g = Sequitur::induce(input.clone());
            assert_eq!(g.expand_rule(g.r0_id()), input, "run length {n}");
        }
    }

    #[test]
    fn alternating_long() {
        let input: Vec<u32> = (0..200).map(|i| i % 2).collect();
        let g = Sequitur::induce(input.clone());
        assert_eq!(g.expand_rule(g.r0_id()), input);
        // Strong compression expected: R0 shrinks well below input length.
        assert!(g.rule(g.r0_id()).rhs.len() < 20);
    }

    #[test]
    fn utility_holds_on_structured_input() {
        let mut input = Vec::new();
        for _ in 0..10 {
            input.extend(letters("abcab"));
            input.extend(letters("xyz"));
        }
        let g = Sequitur::induce(input.clone());
        assert_eq!(g.expand_rule(g.r0_id()), input);
        for rule in g.rules() {
            if rule.id != g.r0_id() {
                assert!(rule.rule_uses >= 2);
                assert!(rule.rhs.len() >= 2, "rules have at least two symbols");
            }
        }
    }

    #[test]
    fn incremental_equals_batch() {
        let input = letters("abcabdabcabdabcabe");
        let mut s = Sequitur::new();
        assert!(s.is_empty());
        for &t in &input {
            s.push(t);
        }
        assert_eq!(s.len(), input.len());
        let g1 = s.finish();
        let g2 = Sequitur::induce(input.clone());
        assert_eq!(g1.expand_rule(g1.r0_id()), g2.expand_rule(g2.r0_id()));
        assert_eq!(g1.num_rules(), g2.num_rules());
    }

    #[test]
    fn snapshot_matches_finish_and_allows_continuation() {
        let input = letters("abcabdabcabdabcab");
        let mut s = Sequitur::new();
        for &t in &input[..10] {
            s.push(t);
        }
        let mid = s.snapshot();
        assert_eq!(mid.expand_rule(mid.r0_id()), input[..10].to_vec());
        // Continue pushing after the snapshot; the final grammar matches a
        // fresh batch run.
        for &t in &input[10..] {
            s.push(t);
        }
        let done = s.finish();
        let batch = Sequitur::induce(input.clone());
        assert_eq!(done.expand_rule(done.r0_id()), input);
        assert_eq!(done.num_rules(), batch.num_rules());
    }

    #[test]
    fn stats_track_rule_churn_and_digram_peak() {
        let mut s = Sequitur::new();
        // Only R0 exists; nothing indexed yet.
        assert_eq!(
            s.stats(),
            InductionStats {
                rules_created: 1,
                ..InductionStats::default()
            }
        );
        for t in letters("abcdbcabcdbcabcdbc") {
            s.push(t);
        }
        let stats = s.stats();
        let g = s.finish();
        // Created = survivors + deleted (R0 counts as created).
        assert_eq!(
            stats.rules_created,
            g.num_rules() as u64 + stats.rules_deleted
        );
        assert!(stats.peak_digram_entries > 0);
        // The peak is a high-water mark over insertions, so it bounds the
        // number of distinct digrams live at any point.
        assert!(stats.peak_digram_entries >= 2);
        // Plain unique input causes no churn beyond R0.
        let mut plain = Sequitur::new();
        for t in letters("abcdefg") {
            plain.push(t);
        }
        assert_eq!(plain.stats().rules_created, 1);
        assert_eq!(plain.stats().rules_deleted, 0);
        assert_eq!(plain.stats().peak_digram_entries, 6);
    }

    #[test]
    fn grammar_is_smaller_than_repetitive_input() {
        let mut input = Vec::new();
        for _ in 0..50 {
            input.extend(letters("abcdefgh"));
        }
        let g = Sequitur::induce(input.clone());
        assert_eq!(g.expand_rule(g.r0_id()), input);
        assert!(
            g.grammar_size() < input.len() / 2,
            "size {}",
            g.grammar_size()
        );
    }

    // ----- eviction -------------------------------------------------------

    /// Evicts `k` tokens and asserts the survivor equals the input suffix,
    /// holds all grammar invariants, and keeps the digram index consistent.
    fn assert_evicted_ok(input: &[u32], k: usize) {
        let mut s = Sequitur::new();
        for &t in input {
            s.push(t);
        }
        s.evict_front(k);
        let suffix = &input[k.min(input.len())..];
        assert_eq!(s.len(), suffix.len(), "live length after evicting {k}");
        assert_eq!(s.tokens_evicted(), k.min(input.len()) as u64);
        let problems = s.check_index_consistency();
        assert!(
            problems.is_empty(),
            "digram index inconsistent after evicting {k}: {problems:?}"
        );
        let g = s.snapshot();
        assert_eq!(
            g.verify(suffix),
            None,
            "invariants broken after evicting {k} of {}",
            input.len()
        );
    }

    #[test]
    fn evict_plain_terminals() {
        let input = letters("abcdefg");
        for k in 0..=input.len() {
            assert_evicted_ok(&input, k);
        }
    }

    #[test]
    fn evict_through_rules_and_straddles() {
        let input = letters("abcabdabcabdabcabe");
        for k in 0..=input.len() {
            assert_evicted_ok(&input, k);
        }
    }

    #[test]
    fn evict_deep_hierarchy() {
        let mut input = Vec::new();
        for _ in 0..12 {
            input.extend(letters("abcdbc"));
        }
        for k in 0..=input.len() {
            assert_evicted_ok(&input, k);
        }
    }

    #[test]
    fn evict_triples_runs() {
        for n in [5usize, 17, 40] {
            let input = vec![3u32; n];
            for k in 0..=n {
                assert_evicted_ok(&input, k);
            }
        }
    }

    #[test]
    fn evict_then_continue_pushing() {
        let input = letters("abcabdabcabdabcabdabcabd");
        let mut s = Sequitur::new();
        for &t in &input[..16] {
            s.push(t);
        }
        s.evict_front(7);
        for &t in &input[16..] {
            s.push(t);
        }
        let expected: Vec<u32> = input[7..].to_vec();
        assert_eq!(s.len(), expected.len());
        let g = s.snapshot();
        assert_eq!(g.verify(&expected), None);
        assert!(s.check_index_consistency().is_empty());
    }

    #[test]
    fn eviction_stats_accumulate() {
        let input = letters("abcabdabcabdabcabd");
        let mut s = Sequitur::new();
        for &t in &input {
            s.push(t);
        }
        s.evict_front(10);
        let stats = s.stats();
        assert_eq!(stats.tokens_evicted, 10);
        // Eviction through this hierarchy must delete at least one rule.
        assert!(stats.rules_evicted >= 1, "stats: {stats:?}");
        // Relearned rules are also counted as created.
        assert!(stats.rules_created >= stats.rules_relearned);
    }

    #[test]
    fn journal_reports_births_and_deaths() {
        let mut s = Sequitur::new();
        s.enable_journal();
        let mut events = Vec::new();
        for &t in &letters("abab") {
            s.push(t);
        }
        s.drain_journal(&mut events);
        // `abab` forms one rule with two occurrences: [0,2) and [2,4).
        let births: Vec<_> = events
            .iter()
            .filter(|e| matches!(e, GrammarEvent::Born { .. }))
            .collect();
        assert_eq!(births.len(), 2, "events: {events:?}");
        assert!(events.contains(&GrammarEvent::Born {
            token_start: 0,
            token_len: 2
        }));
        assert!(events.contains(&GrammarEvent::Born {
            token_start: 2,
            token_len: 2
        }));
        // Evicting the first occurrence reports its death.
        events.clear();
        s.evict_front(2);
        s.drain_journal(&mut events);
        assert!(
            events.iter().any(|e| matches!(
                e,
                GrammarEvent::Died {
                    token_start: 0,
                    token_len: 2
                }
            )),
            "events: {events:?}"
        );
    }

    #[test]
    fn journal_disabled_by_default() {
        let mut s = Sequitur::new();
        for &t in &letters("ababab") {
            s.push(t);
        }
        s.evict_front(2);
        let mut events = Vec::new();
        s.drain_journal(&mut events);
        assert!(events.is_empty());
    }

    #[test]
    fn rule_slots_are_recycled_under_eviction() {
        // A long alternating stream with continuous eviction must not grow
        // the rule arena without bound.
        let mut s = Sequitur::new();
        let mut pushed = 0usize;
        for i in 0..4000u32 {
            s.push(i % 3);
            pushed += 1;
            if pushed > 64 {
                s.evict_front(pushed - 64);
                pushed = 64;
            }
        }
        let sig = s.capacity_signature();
        // The rules arena (index 2 in the signature) stays small relative
        // to the number of rules ever created.
        assert!(
            sig[2] < 256,
            "rule arena grew unboundedly: {} slots for {} creations",
            sig[2],
            s.stats().rules_created
        );
        assert!(s.stats().rules_created > 100);
        assert!(s.check_index_consistency().is_empty());
    }
}
