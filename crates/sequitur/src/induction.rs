//! The incremental Sequitur algorithm.
//!
//! A faithful arena-based port of the classic doubly-linked-list
//! implementation (Nevill-Manning & Witten's `sequitur` C++): symbols live
//! in a slab with `u32` links, rules are circular lists closed by a *guard*
//! node, and a digram hash table maps each adjacent symbol pair to its
//! single allowed location.

// gv-lint: allow(no-nondeterminism) imported for the lookup-only digram table below
use std::collections::HashMap;

use crate::grammar::{Grammar, GrammarRule, RuleId, Symbol};

/// Sentinel for "no node".
const NIL: u32 = u32::MAX;

/// A symbol value inside the working grammar.
///
/// `Guard(r)` is the sentinel closing rule `r`'s circular list; guards never
/// participate in digrams.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Val {
    Term(u32),
    Rule(u32),
    Guard(u32),
}

impl Val {
    fn is_guard(self) -> bool {
        matches!(self, Val::Guard(_))
    }
}

#[derive(Debug, Clone, Copy)]
struct Node {
    prev: u32,
    next: u32,
    val: Val,
}

#[derive(Debug, Clone, Copy)]
struct RuleSlot {
    /// The guard node closing this rule's circular symbol list.
    guard: u32,
    /// How many non-terminal symbols reference this rule.
    uses: u32,
    alive: bool,
}

/// Cheap always-on accounting of one induction run: how much rule churn
/// the input caused and how large the digram index grew. Maintained as
/// three plain integers alongside operations that already touch the same
/// structures, so there is no "instrumented" variant of the inducer —
/// callers that don't read the stats pay a handful of integer increments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InductionStats {
    /// Rules created, including `R0` and rules later deleted by utility.
    pub rules_created: u64,
    /// Rules deleted by the rule-utility constraint (inlined away).
    pub rules_deleted: u64,
    /// High-water mark of the digram hash table's entry count.
    pub peak_digram_entries: u64,
}

/// Incremental Sequitur inducer over `u32` terminal tokens.
///
/// Feed tokens with [`Sequitur::push`], then call [`Sequitur::finish`]
/// (or use the [`Sequitur::induce`] convenience) to obtain the final
/// immutable [`Grammar`].
#[derive(Debug)]
pub struct Sequitur {
    nodes: Vec<Node>,
    free: Vec<u32>,
    rules: Vec<RuleSlot>,
    // gv-lint: allow(no-nondeterminism) classic Sequitur digram table: probed and mutated by key, never iterated
    digrams: HashMap<(Val, Val), u32>,
    /// Number of terminals consumed.
    len: usize,
    stats: InductionStats,
}

impl Default for Sequitur {
    fn default() -> Self {
        Self::new()
    }
}

impl Sequitur {
    /// Creates an inducer with an empty start rule `R0`.
    pub fn new() -> Self {
        let mut s = Self {
            nodes: Vec::new(),
            free: Vec::new(),
            rules: Vec::new(),
            // gv-lint: allow(no-nondeterminism) allocates the lookup-only digram table
            digrams: HashMap::new(),
            len: 0,
            stats: InductionStats::default(),
        };
        s.new_rule(); // R0
        s
    }

    /// Induces a grammar from an entire token stream in one call.
    pub fn induce<I: IntoIterator<Item = u32>>(tokens: I) -> Grammar {
        let mut s = Self::new();
        for t in tokens {
            s.push(t);
        }
        s.finish()
    }

    /// Number of terminals consumed so far.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Accounting for the induction so far (see [`InductionStats`]).
    pub fn stats(&self) -> InductionStats {
        self.stats
    }

    /// `true` when no terminal has been consumed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends one terminal token to `R0` and restores the invariants.
    pub fn push(&mut self, token: u32) {
        self.len += 1;
        let node = self.alloc(Val::Term(token));
        let guard = self.rules[0].guard;
        let last = self.nodes[guard as usize].prev;
        self.insert_after(last, node);
        if self.nodes[node as usize].prev != guard {
            let p = self.nodes[node as usize].prev;
            self.check(p);
        }
    }

    /// Extracts the current grammar without consuming the inducer —
    /// the streaming/early-detection entry point (paper §7 future work):
    /// push tokens as they arrive, snapshot whenever a decision is needed.
    pub fn snapshot(&self) -> Grammar {
        self.extract()
    }

    /// Finalizes induction and extracts the immutable [`Grammar`].
    pub fn finish(self) -> Grammar {
        self.extract()
    }

    fn extract(&self) -> Grammar {
        let mut rules: Vec<Option<GrammarRule>> = Vec::with_capacity(self.rules.len());
        // Compact rule ids: map arena rule index → dense grammar id, keeping
        // creation order (R0 first), skipping deleted rules.
        let mut id_map: Vec<Option<RuleId>> = vec![None; self.rules.len()];
        let mut next_id = 0u32;
        for (i, slot) in self.rules.iter().enumerate() {
            if slot.alive {
                id_map[i] = Some(RuleId(next_id));
                next_id += 1;
            }
        }
        for (i, slot) in self.rules.iter().enumerate() {
            if !slot.alive {
                continue;
            }
            let mut rhs = Vec::new();
            let guard = slot.guard;
            let mut cur = self.nodes[guard as usize].next;
            while cur != guard {
                let val = self.nodes[cur as usize].val;
                rhs.push(match val {
                    Val::Term(t) => Symbol::Terminal(t),
                    Val::Rule(r) => {
                        // gv-lint: allow(no-unwrap-in-lib) rule_uses bookkeeping guarantees referenced rules stay live until the referencing body is rewritten
                        Symbol::Rule(id_map[r as usize].expect("live rule referenced a dead rule"))
                    }
                    Val::Guard(_) => unreachable!("guard inside rule body"),
                });
                cur = self.nodes[cur as usize].next;
            }
            rules.push(Some(GrammarRule {
                // gv-lint: allow(no-unwrap-in-lib) id_map[i] was assigned for every live slot in the numbering pass just above
                id: id_map[i].unwrap(),
                rhs,
                rule_uses: slot.uses as usize,
            }));
        }
        Grammar::from_rules(rules.into_iter().flatten().collect(), self.len)
    }

    // ----- arena plumbing -------------------------------------------------

    fn alloc(&mut self, val: Val) -> u32 {
        if let Some(idx) = self.free.pop() {
            self.nodes[idx as usize] = Node {
                prev: NIL,
                next: NIL,
                val,
            };
            idx
        } else {
            let idx = self.nodes.len() as u32;
            self.nodes.push(Node {
                prev: NIL,
                next: NIL,
                val,
            });
            idx
        }
    }

    fn release(&mut self, idx: u32) {
        self.nodes[idx as usize] = Node {
            prev: NIL,
            next: NIL,
            val: Val::Guard(u32::MAX),
        };
        self.free.push(idx);
    }

    fn val(&self, idx: u32) -> Val {
        self.nodes[idx as usize].val
    }

    fn next(&self, idx: u32) -> u32 {
        self.nodes[idx as usize].next
    }

    fn prev(&self, idx: u32) -> u32 {
        self.nodes[idx as usize].prev
    }

    fn new_rule(&mut self) -> u32 {
        let rule_id = self.rules.len() as u32;
        let guard = self.alloc(Val::Guard(rule_id));
        // Circular: an empty rule's guard points at itself.
        self.nodes[guard as usize].prev = guard;
        self.nodes[guard as usize].next = guard;
        self.rules.push(RuleSlot {
            guard,
            uses: 0,
            alive: true,
        });
        self.stats.rules_created += 1;
        rule_id
    }

    /// Points the digram index at `at`, tracking the table's high-water
    /// mark (every insertion funnels through here).
    #[inline]
    fn index_digram(&mut self, key: (Val, Val), at: u32) {
        self.digrams.insert(key, at);
        let entries = self.digrams.len() as u64;
        if entries > self.stats.peak_digram_entries {
            self.stats.peak_digram_entries = entries;
        }
    }

    fn digram_key(&self, first: u32) -> Option<(Val, Val)> {
        let n = self.next(first);
        if n == NIL {
            return None;
        }
        let a = self.val(first);
        let b = self.val(n);
        if a.is_guard() || b.is_guard() {
            return None;
        }
        Some((a, b))
    }

    /// Removes the digram starting at `first` from the index, if the index
    /// currently points at `first`.
    fn delete_digram(&mut self, first: u32) {
        if let Some(key) = self.digram_key(first) {
            if self.digrams.get(&key) == Some(&first) {
                self.digrams.remove(&key);
            }
        }
    }

    /// Links `left` → `right`, maintaining the digram index (including the
    /// classic "triples" adjustment for runs like `aaa`).
    fn join(&mut self, left: u32, right: u32) {
        if self.next(left) != NIL {
            self.delete_digram(left);

            // Triples fix-ups, as in the original implementation: when a
            // symbol sits between two copies of itself, make sure the index
            // points at a digram that still exists after the relink.
            let rp = self.prev(right);
            let rn = self.next(right);
            if rp != NIL
                && rn != NIL
                && self.val(right) == self.val(rp)
                && self.val(right) == self.val(rn)
            {
                if let Some(key) = self.digram_key(right) {
                    self.index_digram(key, right);
                }
            }
            let lp = self.prev(left);
            let ln = self.next(left);
            if lp != NIL
                && ln != NIL
                && self.val(left) == self.val(lp)
                && self.val(left) == self.val(ln)
            {
                if let Some(key) = self.digram_key(lp) {
                    self.index_digram(key, lp);
                }
            }
        }
        self.nodes[left as usize].next = right;
        self.nodes[right as usize].prev = left;
    }

    /// Inserts node `y` right after node `x`.
    fn insert_after(&mut self, x: u32, y: u32) {
        let xn = self.next(x);
        self.join(y, xn);
        self.join(x, y);
    }

    /// Unlinks and frees a symbol node, updating the digram index and rule
    /// use counts (the C++ destructor).
    fn delete_symbol(&mut self, idx: u32) {
        let p = self.prev(idx);
        let n = self.next(idx);
        self.join(p, n);
        if !self.val(idx).is_guard() {
            self.delete_digram(idx);
            if let Val::Rule(r) = self.val(idx) {
                self.rules[r as usize].uses -= 1;
            }
        }
        self.release(idx);
    }

    /// Enforces digram uniqueness for the digram starting at `first`.
    /// Returns `true` when the grammar changed (or the digram was already
    /// indexed elsewhere).
    fn check(&mut self, first: u32) -> bool {
        let key = match self.digram_key(first) {
            Some(k) => k,
            None => return false,
        };
        match self.digrams.get(&key).copied() {
            None => {
                self.index_digram(key, first);
                false
            }
            Some(existing) => {
                if existing != first && self.next(existing) != first {
                    self.match_digrams(first, existing);
                }
                true
            }
        }
    }

    /// Deals with a digram at `new` that duplicates the indexed digram at
    /// `existing`: reuse the rule when `existing` is a complete rule body,
    /// otherwise create a fresh rule for the pair.
    fn match_digrams(&mut self, new: u32, existing: u32) {
        let e_prev = self.prev(existing);
        let e_next_next = self.next(self.next(existing));
        let rule_id = if self.val(e_prev).is_guard() && self.val(e_next_next).is_guard() {
            // `existing` spans an entire rule body: reuse that rule.
            let r = match self.val(e_prev) {
                Val::Guard(r) => r,
                _ => unreachable!(),
            };
            self.substitute(new, r);
            r
        } else {
            // Create a new rule holding a copy of the digram.
            let r = self.new_rule();
            let a = self.val(new);
            let b = self.val(self.next(new));
            let guard = self.rules[r as usize].guard;
            let na = self.alloc(a);
            if let Val::Rule(ra) = a {
                self.rules[ra as usize].uses += 1;
            }
            self.insert_after(guard, na);
            let nb = self.alloc(b);
            if let Val::Rule(rb) = b {
                self.rules[rb as usize].uses += 1;
            }
            self.insert_after(na, nb);

            self.substitute(existing, r);
            self.substitute(new, r);

            // Index the digram that now constitutes the rule body.
            let body_first = self.next(self.rules[r as usize].guard);
            if let Some(key) = self.digram_key(body_first) {
                self.index_digram(key, body_first);
            }
            r
        };

        // Rule utility: if a boundary symbol of the (re)used rule is itself
        // a rule reference whose rule is now used only once, inline it.
        // (The classic implementation checks only the first symbol; the
        // symmetric case — a last-symbol rule dropping to one use — is
        // possible too and is handled here the same way.)
        let body_first = self.next(self.rules[rule_id as usize].guard);
        if let Val::Rule(inner) = self.val(body_first) {
            if self.rules[inner as usize].uses == 1 {
                self.expand(body_first);
            }
        }
        let body_last = self.prev(self.rules[rule_id as usize].guard);
        if body_last != body_first {
            if let Val::Rule(inner) = self.val(body_last) {
                if self.rules[inner as usize].uses == 1 {
                    self.expand(body_last);
                }
            }
        }
    }

    /// Replaces the two symbols starting at `first` with a reference to
    /// rule `r`, then re-checks the digrams around the new non-terminal.
    fn substitute(&mut self, first: u32, r: u32) {
        let q = self.prev(first);
        let second = self.next(first);
        self.delete_symbol(first);
        self.delete_symbol(second);
        let nt = self.alloc(Val::Rule(r));
        self.rules[r as usize].uses += 1;
        self.insert_after(q, nt);
        if !self.check(q) {
            let qn = self.next(q);
            self.check(qn);
        }
    }

    /// Inlines the body of the once-used rule referenced by the
    /// non-terminal node `nt`, deleting the rule (utility enforcement).
    fn expand(&mut self, nt: u32) {
        let left = self.prev(nt);
        let right = self.next(nt);
        let r = match self.val(nt) {
            Val::Rule(r) => r,
            _ => unreachable!("expand called on a non-rule symbol"),
        };
        let guard = self.rules[r as usize].guard;
        let first = self.next(guard);
        let last = self.prev(guard);
        debug_assert_ne!(first, guard, "expanding an empty rule");

        // Remove the digram entry anchored at `nt` before unlinking it.
        self.delete_digram(nt);
        // Also the digram (left, nt) dies with the relink; `join` handles it.
        self.rules[r as usize].uses -= 1;
        debug_assert_eq!(self.rules[r as usize].uses, 0);
        self.rules[r as usize].alive = false;
        self.stats.rules_deleted += 1;
        self.release(nt);
        self.release(guard);

        self.join(left, first);
        self.join(last, right);

        // The classic implementation indexes the freshly created trailing
        // digram directly (overwriting any stale entry). We do the same for
        // the leading digram, which arises when expanding a rule's *last*
        // symbol (where `left` is a real symbol, not the guard).
        if let Some(key) = self.digram_key(last) {
            self.index_digram(key, last);
        }
        if let Some(key) = self.digram_key(left) {
            self.index_digram(key, left);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grammar::Symbol;

    fn letters(s: &str) -> Vec<u32> {
        s.bytes().map(|b| (b - b'a') as u32).collect()
    }

    #[test]
    fn empty_input_gives_empty_r0() {
        let g = Sequitur::induce(std::iter::empty());
        assert_eq!(g.num_rules(), 1);
        assert!(g.rule(g.r0_id()).rhs.is_empty());
        assert_eq!(g.input_len(), 0);
    }

    #[test]
    fn single_token() {
        let g = Sequitur::induce([42u32]);
        assert_eq!(g.num_rules(), 1);
        assert_eq!(g.rule(g.r0_id()).rhs, vec![Symbol::Terminal(42)]);
    }

    #[test]
    fn no_repetition_no_rules() {
        let g = Sequitur::induce(letters("abcdefg"));
        assert_eq!(g.num_rules(), 1);
        assert_eq!(g.rule(g.r0_id()).rhs.len(), 7);
    }

    #[test]
    fn abab_creates_one_rule() {
        let g = Sequitur::induce(letters("abab"));
        assert_eq!(g.num_rules(), 2);
        let r0 = g.rule(g.r0_id());
        assert_eq!(r0.rhs.len(), 2);
        // Both R0 symbols are the same rule, used twice.
        match (&r0.rhs[0], &r0.rhs[1]) {
            (Symbol::Rule(a), Symbol::Rule(b)) => {
                assert_eq!(a, b);
                assert_eq!(g.rule(*a).rule_uses, 2);
                assert_eq!(g.expand_rule(*a), letters("ab"));
            }
            other => panic!("unexpected R0 shape: {other:?}"),
        }
    }

    #[test]
    fn paper_motivating_example() {
        // §3: S = abc abc cba xxx abc abc cba, over word-tokens
        // {abc→0, cba→1, xxx→2}: 0 0 1 2 0 0 1.
        let g = Sequitur::induce([0u32, 0, 1, 2, 0, 0, 1]);
        let r0 = g.rule(g.r0_id());
        // Expect R0 → R1 xxx R1 with R1 → 0 0 1 (possibly via nesting).
        assert_eq!(g.expand_rule(g.r0_id()), vec![0, 0, 1, 2, 0, 0, 1]);
        assert_eq!(r0.rhs.len(), 3);
        assert!(matches!(r0.rhs[1], Symbol::Terminal(2)));
        match (&r0.rhs[0], &r0.rhs[2]) {
            (Symbol::Rule(a), Symbol::Rule(b)) => {
                assert_eq!(a, b);
                assert_eq!(g.expand_rule(*a), vec![0, 0, 1]);
            }
            other => panic!("unexpected R0 shape: {other:?}"),
        }
    }

    #[test]
    fn rule_reuse_nested() {
        // Classic: "abcdbcabcdbc" → hierarchy with nested rules.
        let g = Sequitur::induce(letters("abcdbcabcdbc"));
        assert_eq!(
            g.expand_rule(g.r0_id()),
            letters("abcdbc")
                .iter()
                .chain(letters("abcdbc").iter())
                .copied()
                .collect::<Vec<_>>()
        );
        // All rules except R0 used at least twice (utility invariant).
        for rule in g.rules() {
            if rule.id != g.r0_id() {
                assert!(
                    rule.rule_uses >= 2,
                    "rule {:?} used {}",
                    rule.id,
                    rule.rule_uses
                );
            }
        }
    }

    #[test]
    fn triples_run() {
        // Runs of one symbol exercise the overlapping-digram guard.
        for n in 2..=40 {
            let input = vec![7u32; n];
            let g = Sequitur::induce(input.clone());
            assert_eq!(g.expand_rule(g.r0_id()), input, "run length {n}");
        }
    }

    #[test]
    fn alternating_long() {
        let input: Vec<u32> = (0..200).map(|i| i % 2).collect();
        let g = Sequitur::induce(input.clone());
        assert_eq!(g.expand_rule(g.r0_id()), input);
        // Strong compression expected: R0 shrinks well below input length.
        assert!(g.rule(g.r0_id()).rhs.len() < 20);
    }

    #[test]
    fn utility_holds_on_structured_input() {
        let mut input = Vec::new();
        for _ in 0..10 {
            input.extend(letters("abcab"));
            input.extend(letters("xyz"));
        }
        let g = Sequitur::induce(input.clone());
        assert_eq!(g.expand_rule(g.r0_id()), input);
        for rule in g.rules() {
            if rule.id != g.r0_id() {
                assert!(rule.rule_uses >= 2);
                assert!(rule.rhs.len() >= 2, "rules have at least two symbols");
            }
        }
    }

    #[test]
    fn incremental_equals_batch() {
        let input = letters("abcabdabcabdabcabe");
        let mut s = Sequitur::new();
        assert!(s.is_empty());
        for &t in &input {
            s.push(t);
        }
        assert_eq!(s.len(), input.len());
        let g1 = s.finish();
        let g2 = Sequitur::induce(input.clone());
        assert_eq!(g1.expand_rule(g1.r0_id()), g2.expand_rule(g2.r0_id()));
        assert_eq!(g1.num_rules(), g2.num_rules());
    }

    #[test]
    fn snapshot_matches_finish_and_allows_continuation() {
        let input = letters("abcabdabcabdabcab");
        let mut s = Sequitur::new();
        for &t in &input[..10] {
            s.push(t);
        }
        let mid = s.snapshot();
        assert_eq!(mid.expand_rule(mid.r0_id()), input[..10].to_vec());
        // Continue pushing after the snapshot; the final grammar matches a
        // fresh batch run.
        for &t in &input[10..] {
            s.push(t);
        }
        let done = s.finish();
        let batch = Sequitur::induce(input.clone());
        assert_eq!(done.expand_rule(done.r0_id()), input);
        assert_eq!(done.num_rules(), batch.num_rules());
    }

    #[test]
    fn stats_track_rule_churn_and_digram_peak() {
        let mut s = Sequitur::new();
        // Only R0 exists; nothing indexed yet.
        assert_eq!(
            s.stats(),
            InductionStats {
                rules_created: 1,
                rules_deleted: 0,
                peak_digram_entries: 0
            }
        );
        for t in letters("abcdbcabcdbcabcdbc") {
            s.push(t);
        }
        let stats = s.stats();
        let g = s.finish();
        // Created = survivors + deleted (R0 counts as created).
        assert_eq!(
            stats.rules_created,
            g.num_rules() as u64 + stats.rules_deleted
        );
        assert!(stats.peak_digram_entries > 0);
        // The peak is a high-water mark over insertions, so it bounds the
        // number of distinct digrams live at any point.
        assert!(stats.peak_digram_entries >= 2);
        // Plain unique input causes no churn beyond R0.
        let mut plain = Sequitur::new();
        for t in letters("abcdefg") {
            plain.push(t);
        }
        assert_eq!(plain.stats().rules_created, 1);
        assert_eq!(plain.stats().rules_deleted, 0);
        assert_eq!(plain.stats().peak_digram_entries, 6);
    }

    #[test]
    fn grammar_is_smaller_than_repetitive_input() {
        let mut input = Vec::new();
        for _ in 0..50 {
            input.extend(letters("abcdefgh"));
        }
        let g = Sequitur::induce(input.clone());
        assert_eq!(g.expand_rule(g.r0_id()), input);
        assert!(
            g.grammar_size() < input.len() / 2,
            "size {}",
            g.grammar_size()
        );
    }
}
