//! Property tests for Sequitur: on arbitrary token streams the induced
//! grammar must round-trip to the input and maintain the paper's two
//! invariants (digram uniqueness, rule utility).

use gv_sequitur::Sequitur;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Small alphabets force heavy rule creation/expansion churn.
    #[test]
    fn invariants_hold_small_alphabet(tokens in proptest::collection::vec(0u32..4, 0..400)) {
        let g = Sequitur::induce(tokens.iter().copied());
        prop_assert_eq!(g.verify(&tokens), None);
    }

    /// Mid-size alphabets resemble real SAX token streams.
    #[test]
    fn invariants_hold_mid_alphabet(tokens in proptest::collection::vec(0u32..32, 0..600)) {
        let g = Sequitur::induce(tokens.iter().copied());
        prop_assert_eq!(g.verify(&tokens), None);
    }

    /// Binary streams maximize digram collisions and the triples fix-up.
    #[test]
    fn invariants_hold_binary(tokens in proptest::collection::vec(0u32..2, 0..300)) {
        let g = Sequitur::induce(tokens.iter().copied());
        prop_assert_eq!(g.verify(&tokens), None);
    }

    /// Highly repetitive inputs (tiled patterns) build deep hierarchies.
    #[test]
    fn invariants_hold_tiled(pattern in proptest::collection::vec(0u32..6, 1..12), reps in 1usize..40) {
        let tokens: Vec<u32> =
            std::iter::repeat_n(pattern.iter().copied(), reps).flatten().collect();
        let g = Sequitur::induce(tokens.iter().copied());
        prop_assert_eq!(g.verify(&tokens), None);
    }

    /// Occurrences must tile consistently: every reported occurrence's
    /// expansion matches the input slice it claims to cover.
    #[test]
    fn occurrences_match_input_slices(tokens in proptest::collection::vec(0u32..8, 0..300)) {
        let g = Sequitur::induce(tokens.iter().copied());
        for occ in g.occurrences() {
            let slice = &tokens[occ.token_start..occ.token_start + occ.token_len];
            prop_assert_eq!(g.expand_rule(occ.rule), slice.to_vec());
        }
    }

    /// Every non-R0 rule occurs in the input at least as many times as its
    /// reference count (each reference site is reached at least once from
    /// R0, and reused rules are reached more often).
    #[test]
    fn occurrence_counts_at_least_uses(tokens in proptest::collection::vec(0u32..5, 0..300)) {
        let g = Sequitur::induce(tokens.iter().copied());
        let counts = g.occurrence_counts();
        for rule in g.rules() {
            if rule.id == g.r0_id() {
                continue;
            }
            let occ = counts.get(&rule.id).copied().unwrap_or(0);
            prop_assert!(
                occ >= rule.rule_uses,
                "rule {} occurs {} times but is referenced {} times",
                rule.id, occ, rule.rule_uses
            );
        }
    }

    /// Grammar size never exceeds input length + a small constant: Sequitur
    /// compresses (or at worst stores the input verbatim in R0).
    #[test]
    fn grammar_never_larger_than_input(tokens in proptest::collection::vec(0u32..16, 0..400)) {
        let g = Sequitur::induce(tokens.iter().copied());
        prop_assert!(g.grammar_size() <= tokens.len().max(1));
    }
}
