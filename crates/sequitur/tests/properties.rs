//! Property tests for Sequitur: on arbitrary token streams the induced
//! grammar must round-trip to the input and maintain the paper's two
//! invariants (digram uniqueness, rule utility).

use gv_sequitur::Sequitur;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Small alphabets force heavy rule creation/expansion churn.
    #[test]
    fn invariants_hold_small_alphabet(tokens in proptest::collection::vec(0u32..4, 0..400)) {
        let g = Sequitur::induce(tokens.iter().copied());
        prop_assert_eq!(g.verify(&tokens), None);
    }

    /// Mid-size alphabets resemble real SAX token streams.
    #[test]
    fn invariants_hold_mid_alphabet(tokens in proptest::collection::vec(0u32..32, 0..600)) {
        let g = Sequitur::induce(tokens.iter().copied());
        prop_assert_eq!(g.verify(&tokens), None);
    }

    /// Binary streams maximize digram collisions and the triples fix-up.
    #[test]
    fn invariants_hold_binary(tokens in proptest::collection::vec(0u32..2, 0..300)) {
        let g = Sequitur::induce(tokens.iter().copied());
        prop_assert_eq!(g.verify(&tokens), None);
    }

    /// Highly repetitive inputs (tiled patterns) build deep hierarchies.
    #[test]
    fn invariants_hold_tiled(pattern in proptest::collection::vec(0u32..6, 1..12), reps in 1usize..40) {
        let tokens: Vec<u32> =
            std::iter::repeat_n(pattern.iter().copied(), reps).flatten().collect();
        let g = Sequitur::induce(tokens.iter().copied());
        prop_assert_eq!(g.verify(&tokens), None);
    }

    /// Occurrences must tile consistently: every reported occurrence's
    /// expansion matches the input slice it claims to cover.
    #[test]
    fn occurrences_match_input_slices(tokens in proptest::collection::vec(0u32..8, 0..300)) {
        let g = Sequitur::induce(tokens.iter().copied());
        for occ in g.occurrences() {
            let slice = &tokens[occ.token_start..occ.token_start + occ.token_len];
            prop_assert_eq!(g.expand_rule(occ.rule), slice.to_vec());
        }
    }

    /// Every non-R0 rule occurs in the input at least as many times as its
    /// reference count (each reference site is reached at least once from
    /// R0, and reused rules are reached more often).
    #[test]
    fn occurrence_counts_at_least_uses(tokens in proptest::collection::vec(0u32..5, 0..300)) {
        let g = Sequitur::induce(tokens.iter().copied());
        let counts = g.occurrence_counts();
        for rule in g.rules() {
            if rule.id == g.r0_id() {
                continue;
            }
            let occ = counts.get(&rule.id).copied().unwrap_or(0);
            prop_assert!(
                occ >= rule.rule_uses,
                "rule {} occurs {} times but is referenced {} times",
                rule.id, occ, rule.rule_uses
            );
        }
    }

    /// Grammar size never exceeds input length + a small constant: Sequitur
    /// compresses (or at worst stores the input verbatim in R0).
    #[test]
    fn grammar_never_larger_than_input(tokens in proptest::collection::vec(0u32..16, 0..400)) {
        let g = Sequitur::induce(tokens.iter().copied());
        prop_assert!(g.grammar_size() <= tokens.len().max(1));
    }

    /// Windowed eviction: after retiring an arbitrary prefix, the survivor
    /// must hold all grammar invariants, round-trip to the retained token
    /// suffix — the same suffix a from-scratch `Sequitur::induce` over it
    /// reproduces — and keep the digram index consistent mid-stream.
    #[test]
    fn eviction_preserves_invariants_and_suffix(
        tokens in proptest::collection::vec(0u32..6, 1..300),
        evict_frac in 0.0f64..1.0,
    ) {
        let k = ((tokens.len() as f64) * evict_frac) as usize;
        let mut s = Sequitur::new();
        for &t in &tokens {
            s.push(t);
        }
        s.evict_front(k);
        let suffix = &tokens[k..];
        prop_assert_eq!(s.len(), suffix.len());
        prop_assert_eq!(s.tokens_evicted(), k as u64);
        let problems = s.check_index_consistency();
        prop_assert!(problems.is_empty(), "index problems: {:?}", problems);
        let g = s.snapshot();
        prop_assert_eq!(g.verify(suffix), None);
        // A fresh induction over the suffix agrees on the round-trip.
        let fresh = Sequitur::induce(suffix.iter().copied());
        prop_assert_eq!(g.expand_rule(g.r0_id()), fresh.expand_rule(fresh.r0_id()));
    }

    /// Interleaved push/evict (the streaming pattern: bounded horizon per
    /// push) must agree with the retained suffix at every step's end.
    #[test]
    fn interleaved_push_evict_tracks_suffix(
        tokens in proptest::collection::vec(0u32..4, 1..300),
        horizon in 1usize..48,
    ) {
        let mut s = Sequitur::new();
        for &t in &tokens {
            s.push(t);
            if s.len() > horizon {
                let over = s.len() - horizon;
                s.evict_front(over);
            }
        }
        let keep = tokens.len().min(horizon);
        let suffix = &tokens[tokens.len() - keep..];
        prop_assert_eq!(s.len(), suffix.len());
        let problems = s.check_index_consistency();
        prop_assert!(problems.is_empty(), "index problems: {:?}", problems);
        let g = s.snapshot();
        prop_assert_eq!(g.verify(suffix), None);
    }

    /// Tiled (periodic) streams under per-push eviction: straddling
    /// unrolls followed by re-learning are exactly the cascades that once
    /// leaked once-used rules (see `eviction_enforces_rule_utility`), so
    /// hammer that shape with full invariant checks.
    #[test]
    fn interleaved_push_evict_invariants_tiled(
        pattern in proptest::collection::vec(0u32..8, 4..20),
        reps in 2usize..12,
        horizon in 8usize..64,
    ) {
        let tokens: Vec<u32> =
            std::iter::repeat_n(pattern.iter().copied(), reps).flatten().collect();
        let mut s = Sequitur::new();
        for &t in &tokens {
            s.push(t);
            if s.len() > horizon {
                s.evict_front(s.len() - horizon);
            }
        }
        let keep = tokens.len().min(horizon);
        let suffix = &tokens[tokens.len() - keep..];
        let g = s.snapshot();
        let verdict = g.verify(suffix);
        prop_assert!(
            verdict.is_none(),
            "{:?} (pattern {:?}, reps {}, horizon {})",
            verdict, pattern, reps, horizon
        );
    }

    /// The journal's birth/death arithmetic is conservative: with the
    /// journal enabled, every Born/Died event carries a span inside the
    /// pushed stream, and events at known cursors never exceed the stream.
    #[test]
    fn journal_events_stay_in_bounds(
        tokens in proptest::collection::vec(0u32..4, 1..200),
        horizon in 4usize..32,
    ) {
        use gv_sequitur::GrammarEvent;
        let mut s = Sequitur::new();
        s.enable_journal();
        let mut events = Vec::new();
        for &t in &tokens {
            s.push(t);
            if s.len() > horizon {
                let over = s.len() - horizon;
                s.evict_front(over);
            }
            s.drain_journal(&mut events);
        }
        let total = tokens.len() as u64;
        for e in &events {
            match *e {
                GrammarEvent::Born { token_start, token_len }
                | GrammarEvent::Died { token_start, token_len } => {
                    prop_assert!(token_len >= 2, "rule spans at least two tokens");
                    prop_assert!(
                        token_start + token_len <= total,
                        "event {:?} exceeds stream length {}", e, total
                    );
                }
                GrammarEvent::Dirty => {}
            }
        }
    }
}

/// Regression: evicting a single token from this two-period tiled stream
/// once left a five-rule chain behind, every link used exactly once — the
/// eviction repair's `match_digrams` utility checks cover only the
/// boundary symbols of the rule it (re)uses, and a seam-check cascade
/// that consumes that rule skipped even those. The post-eviction utility
/// sweep now inlines the chain.
#[test]
fn eviction_enforces_rule_utility() {
    let tokens: Vec<u32> = (0..16).chain(0..16).chain(0..8).collect();
    let mut s = Sequitur::new();
    for &t in &tokens {
        s.push(t);
    }
    s.evict_front(1);
    let g = s.snapshot();
    assert_eq!(g.verify(&tokens[1..]), None);
    assert!(s.check_index_consistency().is_empty());
}
