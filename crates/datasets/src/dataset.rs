//! The labelled-dataset container.

use gv_timeseries::{Interval, TimeSeries};

/// One planted ground-truth anomaly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LabeledAnomaly {
    /// Where the anomaly lives in the series.
    pub interval: Interval,
    /// A human-readable description ("premature ventricular contraction",
    /// "holiday: Liberation Day", …).
    pub label: String,
}

/// A generated dataset: the series plus its planted anomalies.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// The generated time series (named after the paper's dataset).
    pub series: TimeSeries,
    /// Ground-truth anomalies, in series order.
    pub anomalies: Vec<LabeledAnomaly>,
}

impl Dataset {
    /// Builds a dataset, sorting anomalies by position.
    pub fn new(series: TimeSeries, mut anomalies: Vec<LabeledAnomaly>) -> Self {
        anomalies.sort_by_key(|a| a.interval);
        Self { series, anomalies }
    }

    /// The first ground-truth anomaly overlapping `iv`, if any.
    pub fn hit(&self, iv: &Interval) -> Option<&LabeledAnomaly> {
        self.anomalies.iter().find(|a| a.interval.overlaps(iv))
    }

    /// `true` when `iv` overlaps *some* planted anomaly — the success
    /// criterion used by the Figure 10 parameter sweep and the
    /// integration tests.
    pub fn is_hit(&self, iv: &Interval) -> bool {
        self.hit(iv).is_some()
    }

    /// `true` when `iv` overlaps a planted anomaly *after widening the
    /// truth by `slack` points on each side* — detectors that fire on the
    /// window containing an anomaly boundary still count.
    pub fn is_hit_with_slack(&self, iv: &Interval, slack: usize) -> bool {
        self.anomalies.iter().any(|a| {
            let wide = Interval::new(
                a.interval.start.saturating_sub(slack),
                (a.interval.end + slack).min(self.series.len()),
            );
            wide.overlaps(iv)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ds() -> Dataset {
        Dataset::new(
            TimeSeries::named("t", vec![0.0; 100]),
            vec![
                LabeledAnomaly {
                    interval: Interval::new(60, 70),
                    label: "b".into(),
                },
                LabeledAnomaly {
                    interval: Interval::new(10, 20),
                    label: "a".into(),
                },
            ],
        )
    }

    #[test]
    fn anomalies_sorted() {
        let d = ds();
        assert_eq!(d.anomalies[0].label, "a");
        assert_eq!(d.anomalies[1].label, "b");
    }

    #[test]
    fn hit_detection() {
        let d = ds();
        assert!(d.is_hit(&Interval::new(15, 16)));
        assert_eq!(d.hit(&Interval::new(65, 80)).unwrap().label, "b");
        assert!(!d.is_hit(&Interval::new(30, 50)));
    }

    #[test]
    fn slack_widens_truth() {
        let d = ds();
        assert!(!d.is_hit(&Interval::new(22, 25)));
        assert!(d.is_hit_with_slack(&Interval::new(22, 25), 5));
        // Slack clamps at the series end.
        assert!(d.is_hit_with_slack(&Interval::new(72, 75), 5));
        assert!(!d.is_hit_with_slack(&Interval::new(80, 90), 5));
    }
}
