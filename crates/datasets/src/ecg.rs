//! Synthetic electrocardiogram analogues (PhysioNet qtdb 0606 and the
//! MIT-BIH records 308/15/108/300/318 used in Table 1).
//!
//! Each heartbeat is a sum of Gaussians over one RR interval — the usual
//! PQRST phenomenological model — with small beat-to-beat RR jitter and
//! measurement noise. Anomalies are planted beats:
//!
//! * [`EcgAnomaly::PrematureVentricular`] — a wide, early, P-less beat with
//!   an inverted T wave (the classic PVC morphology, the qtdb 0606 story);
//! * [`EcgAnomaly::StDistortion`] — an elevated ST segment with normal
//!   QRS, the "very subtle" Figure 2 anomaly.

use gv_timeseries::{Interval, TimeSeries};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::dataset::{Dataset, LabeledAnomaly};
use crate::noise::Gaussian;

/// The kind of beat-level anomaly to plant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EcgAnomaly {
    /// Wide, premature, P-less beat with inverted T.
    PrematureVentricular,
    /// Normal QRS but the ST segment is elevated.
    StDistortion,
}

/// ECG generator parameters.
#[derive(Debug, Clone)]
pub struct EcgParams {
    /// Total series length in samples.
    pub len: usize,
    /// Nominal samples per beat (the "heartbeat length" context the paper
    /// uses to pick the SAX window).
    pub beat_len: usize,
    /// Beat indexes (0-based) that become anomalous.
    pub anomalous_beats: Vec<(usize, EcgAnomaly)>,
    /// Measurement-noise standard deviation (signal peak is ~1.0).
    pub noise_sd: f64,
    /// RR jitter: each beat length is scaled by `1 ± U(0, rr_jitter)`.
    pub rr_jitter: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for EcgParams {
    fn default() -> Self {
        Self {
            len: 2300,
            beat_len: 230,
            anomalous_beats: vec![(4, EcgAnomaly::StDistortion)],
            noise_sd: 0.02,
            rr_jitter: 0.03,
            seed: 0xEC6,
        }
    }
}

/// A Gaussian bump centred at `mu` (beat phase, 0..1) with width `sigma`.
fn bump(phase: f64, mu: f64, sigma: f64, amp: f64) -> f64 {
    let d = (phase - mu) / sigma;
    amp * (-0.5 * d * d).exp()
}

/// One normal beat sample at `phase ∈ [0, 1)`.
fn normal_beat(phase: f64) -> f64 {
    bump(phase, 0.18, 0.035, 0.12)      // P
        + bump(phase, 0.37, 0.012, -0.12) // Q
        + bump(phase, 0.40, 0.014, 1.0)   // R
        + bump(phase, 0.43, 0.013, -0.18) // S
        + bump(phase, 0.62, 0.060, 0.30) // T
}

/// One PVC sample: no P, wide early R, inverted T. `variant` perturbs the
/// morphology: real premature contractions differ beat to beat, and
/// identical planted anomalies would match *each other* and stop being
/// discords (the "twin freak" effect) — so each planted PVC gets its own
/// widths and amplitudes.
fn pvc_beat(phase: f64, variant: usize) -> f64 {
    let v = variant as f64;
    let r_mu = 0.30 + 0.04 * ((v * 0.7).sin());
    let r_sigma = 0.045 + 0.012 * ((v * 1.3).cos());
    let s_amp = -0.35 - 0.10 * ((v * 0.9).sin());
    let t_amp = -0.25 + 0.08 * ((v * 1.7).cos());
    bump(phase, r_mu, r_sigma, 0.95)      // wide, early R
        + bump(phase, r_mu + 0.08, 0.030, s_amp) // deep S
        + bump(phase, 0.60, 0.080, t_amp) // inverted T
}

/// One ST-distorted sample: normal PQRS, elevated plateau before a
/// slightly damped T.
fn st_beat(phase: f64) -> f64 {
    let mut v = bump(phase, 0.18, 0.035, 0.12)
        + bump(phase, 0.37, 0.012, -0.12)
        + bump(phase, 0.40, 0.014, 1.0)
        + bump(phase, 0.43, 0.013, -0.18)
        + bump(phase, 0.62, 0.060, 0.22);
    if (0.45..0.58).contains(&phase) {
        // Raised ST segment (smooth shoulders).
        let t = (phase - 0.45) / 0.13;
        v += 0.18 * (std::f64::consts::PI * t).sin();
    }
    v
}

/// Generates an ECG-like dataset.
pub fn generate(params: EcgParams) -> Dataset {
    let mut rng = StdRng::seed_from_u64(params.seed);
    let mut gauss = Gaussian::new();
    let mut values = Vec::with_capacity(params.len);
    let mut anomalies = Vec::new();

    let mut beat_idx = 0usize;
    let mut anomaly_ordinal = 0usize;
    while values.len() < params.len {
        let jitter = 1.0 + rng.gen_range(-params.rr_jitter..=params.rr_jitter);
        let kind = params
            .anomalous_beats
            .iter()
            .find(|(b, _)| *b == beat_idx)
            .map(|&(_, k)| k);
        // A PVC is premature: the beat is ~25% shorter.
        let this_len = match kind {
            Some(EcgAnomaly::PrematureVentricular) => {
                ((params.beat_len as f64) * 0.75 * jitter).round() as usize
            }
            _ => ((params.beat_len as f64) * jitter).round() as usize,
        }
        .max(8);
        let start = values.len();
        for i in 0..this_len {
            if values.len() >= params.len {
                break;
            }
            let phase = i as f64 / this_len as f64;
            let v = match kind {
                Some(EcgAnomaly::PrematureVentricular) => pvc_beat(phase, anomaly_ordinal),
                Some(EcgAnomaly::StDistortion) => st_beat(phase),
                None => normal_beat(phase),
            };
            values.push(v + gauss.sample_with(&mut rng, 0.0, params.noise_sd));
        }
        if kind.is_some() {
            anomaly_ordinal += 1;
        }
        if let Some(k) = kind {
            let end = values.len();
            if end > start {
                anomalies.push(LabeledAnomaly {
                    interval: Interval::new(start, end),
                    label: match k {
                        EcgAnomaly::PrematureVentricular => {
                            "premature ventricular contraction".into()
                        }
                        EcgAnomaly::StDistortion => "ST segment distortion".into(),
                    },
                });
            }
        }
        beat_idx += 1;
    }

    Dataset::new(TimeSeries::named("ecg", values), anomalies)
}

/// `ECG qtdb 0606` analogue: 2,300 samples, one subtle ST-wave anomaly
/// (Figure 2; Table 1 row "ECG 0606", window 120).
pub fn ecg0606(mut params: EcgParams) -> Dataset {
    params.len = 2300;
    params.beat_len = 230;
    if params.anomalous_beats.is_empty() {
        params.anomalous_beats = vec![(4, EcgAnomaly::StDistortion)];
    }
    let mut d = generate(params);
    d.series.set_name("ECG qtdb 0606 (synthetic)");
    d
}

/// A generic MIT-BIH-style record: `len` samples, `beat_len`-sample beats,
/// PVCs planted at roughly even spacing (`n_anomalies` of them).
pub fn ecg_record(
    name: &str,
    len: usize,
    beat_len: usize,
    n_anomalies: usize,
    seed: u64,
) -> Dataset {
    let n_beats = len / beat_len;
    let anomalous_beats: Vec<(usize, EcgAnomaly)> = (0..n_anomalies)
        .map(|i| {
            let b = (n_beats * (2 * i + 1)) / (2 * n_anomalies).max(1);
            (b.max(1), EcgAnomaly::PrematureVentricular)
        })
        .collect();
    let mut d = generate(EcgParams {
        len,
        beat_len,
        anomalous_beats,
        noise_sd: 0.02,
        rr_jitter: 0.03,
        seed,
    });
    d.series.set_name(name.to_string());
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_ecg0606_shape() {
        let d = ecg0606(EcgParams::default());
        assert_eq!(d.series.len(), 2300);
        assert_eq!(d.anomalies.len(), 1);
        let a = &d.anomalies[0];
        assert!(a.interval.len() > 100 && a.interval.len() < 300);
        assert!(a.label.contains("ST"));
    }

    #[test]
    fn deterministic() {
        let a = ecg0606(EcgParams::default());
        let b = ecg0606(EcgParams::default());
        assert_eq!(a.series.values(), b.series.values());
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(EcgParams {
            seed: 1,
            ..EcgParams::default()
        });
        let b = generate(EcgParams {
            seed: 2,
            ..EcgParams::default()
        });
        assert_ne!(a.series.values(), b.series.values());
    }

    #[test]
    fn signal_is_beat_like() {
        let d = generate(EcgParams {
            noise_sd: 0.0,
            ..EcgParams::default()
        });
        let v = d.series.values();
        // R peaks near 1.0 appear roughly every beat_len samples.
        let peaks = v.iter().filter(|&&x| x > 0.8).count();
        let expected_beats = 2300 / 230;
        assert!(
            peaks >= expected_beats && peaks <= expected_beats * 12,
            "peak samples: {peaks}"
        );
        // Values bounded sanely.
        assert!(v.iter().all(|x| x.abs() < 2.0));
    }

    #[test]
    fn pvc_beats_are_premature_and_distinct() {
        let d = generate(EcgParams {
            len: 4000,
            beat_len: 200,
            anomalous_beats: vec![(5, EcgAnomaly::PrematureVentricular)],
            noise_sd: 0.0,
            rr_jitter: 0.0,
            seed: 9,
        });
        assert_eq!(d.anomalies.len(), 1);
        let iv = d.anomalies[0].interval;
        // Premature: ~75% of nominal length.
        assert!(iv.len() < 170 && iv.len() > 120, "PVC len {}", iv.len());
        // The PVC segment has no sample near the normal R amplitude 1.0
        // at the normal position... it *does* peak near 0.95 though, so
        // instead check the T-wave region goes negative (inversion).
        let seg = &d.series.values()[iv.start..iv.end];
        assert!(seg.iter().copied().fold(f64::INFINITY, f64::min) < -0.15);
    }

    #[test]
    fn record_helper_plants_requested_anomalies() {
        let d = ecg_record("ECG 308 (synthetic)", 5400, 300, 1, 3);
        assert_eq!(d.series.len(), 5400);
        assert_eq!(d.anomalies.len(), 1);
        assert_eq!(d.series.name(), "ECG 308 (synthetic)");
        let d2 = ecg_record("x", 21600, 300, 3, 4);
        assert_eq!(d2.anomalies.len(), 3);
        // Anomalies don't overlap each other.
        for w in d2.anomalies.windows(2) {
            assert!(w[0].interval.end <= w[1].interval.start);
        }
    }
}
