//! # gv-datasets
//!
//! Seeded synthetic analogues of the evaluation datasets from the EDBT'15
//! paper, each with *planted, labelled ground-truth anomalies*.
//!
//! The paper evaluates on proprietary/archival recordings (PhysioNet ECG,
//! Dutch power demand, NASA shuttle telemetry, a surveillance video trace,
//! respiration records, and a private GPS trail). This crate substitutes
//! generators that reproduce each dataset's *structure* — the regularities
//! Sequitur must learn and the kind of irregularity each anomaly
//! introduces — so every experiment exercises the same code paths as the
//! originals (see DESIGN.md §4 for the substitution table).
//!
//! All generators take a seed and are fully deterministic.
//!
//! ```
//! use gv_datasets::ecg::{ecg0606, EcgParams};
//!
//! let data = ecg0606(EcgParams::default());
//! assert_eq!(data.series.len(), 2300);
//! assert_eq!(data.anomalies.len(), 1); // one premature beat
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dataset;
mod noise;

pub mod ecg;
pub mod power;
pub mod respiration;
pub mod table1;
pub mod telemetry;
pub mod trajectory;
pub mod video;

pub use dataset::{Dataset, LabeledAnomaly};
pub use noise::Gaussian;
