//! Surveillance-video analogue (the "ann_gun_CentroidA" trace of
//! Figures 1, 11, 12 and the Table 1 row "Video dataset (gun)").
//!
//! The original series tracks the hand-centroid y-coordinate of an actor
//! repeatedly drawing and holstering a gun. We model each repetition as a
//! smooth draw → aim-hold → holster template with per-repetition timing
//! jitter, and plant anomalous repetitions: a *fumbled holster* (the famous
//! anomaly, the hand dips and re-raises) and an *aborted draw*.

use gv_timeseries::{Interval, TimeSeries};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::dataset::{Dataset, LabeledAnomaly};
use crate::noise::Gaussian;

/// Kinds of anomalous repetitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VideoAnomaly {
    /// The actor fumbles re-holstering: an extra dip and correction at the
    /// end of the repetition.
    FumbledHolster,
    /// The draw is aborted half-way: the hand returns early.
    AbortedDraw,
}

/// Video-trace generator parameters.
#[derive(Debug, Clone)]
pub struct VideoParams {
    /// Total samples (the original trace has 11,251).
    pub len: usize,
    /// Nominal samples per draw-aim-holster repetition.
    pub cycle_len: usize,
    /// Repetition indexes to corrupt.
    pub anomalous_cycles: Vec<(usize, VideoAnomaly)>,
    /// Tracking noise sd (hand travel is ~1.0).
    pub noise_sd: f64,
    /// Per-repetition timing jitter fraction.
    pub jitter: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for VideoParams {
    fn default() -> Self {
        Self {
            len: 11_251,
            cycle_len: 300,
            anomalous_cycles: vec![
                (12, VideoAnomaly::FumbledHolster),
                (26, VideoAnomaly::AbortedDraw),
            ],
            noise_sd: 0.01,
            jitter: 0.03,
            seed: 0x91D,
        }
    }
}

fn smooth_step(t: f64) -> f64 {
    let t = t.clamp(0.0, 1.0);
    t * t * (3.0 - 2.0 * t)
}

/// Normal repetition: rest (low) → draw (rise) → aim hold (plateau) →
/// holster (fall) → rest.
fn normal_cycle(phase: f64) -> f64 {
    let rise = smooth_step((phase - 0.15) / 0.15);
    let fall = smooth_step((phase - 0.70) / 0.15);
    0.1 + 0.8 * (rise - fall).max(0.0)
}

/// Fumbled holster: normal until the holster, then the hand hovers and
/// searches for the holster (oscillating around half height) and only
/// drops at the very end — the canonical "missed the holster" event of
/// the original recording.
fn fumbled_cycle(phase: f64) -> f64 {
    if phase < 0.70 {
        normal_cycle(phase)
    } else {
        let t = (phase - 0.70) / 0.30;
        let hover = 0.55 + 0.25 * (t * 2.5 * std::f64::consts::TAU).sin();
        let drop = smooth_step((t - 0.75) / 0.25);
        0.1 + hover * (1.0 - drop)
    }
}

/// Aborted draw: the hand rises only half-way and returns immediately.
fn aborted_cycle(phase: f64) -> f64 {
    let rise = smooth_step((phase - 0.15) / 0.15);
    let fall = smooth_step((phase - 0.40) / 0.15);
    0.1 + 0.4 * (rise - fall).max(0.0)
}

/// Generates the video-trace dataset.
pub fn generate(params: VideoParams) -> Dataset {
    let mut rng = StdRng::seed_from_u64(params.seed);
    let mut gauss = Gaussian::new();
    let mut values = Vec::with_capacity(params.len);
    let mut anomalies = Vec::new();

    let mut cycle_idx = 0usize;
    while values.len() < params.len {
        let jitter = 1.0 + rng.gen_range(-params.jitter..=params.jitter);
        let this_len = ((params.cycle_len as f64) * jitter).round().max(16.0) as usize;
        let kind = params
            .anomalous_cycles
            .iter()
            .find(|(c, _)| *c == cycle_idx)
            .map(|&(_, k)| k);
        let start = values.len();
        for i in 0..this_len {
            if values.len() >= params.len {
                break;
            }
            let phase = i as f64 / this_len as f64;
            let v = match kind {
                Some(VideoAnomaly::FumbledHolster) => fumbled_cycle(phase),
                Some(VideoAnomaly::AbortedDraw) => aborted_cycle(phase),
                None => normal_cycle(phase),
            };
            values.push(v + gauss.sample_with(&mut rng, 0.0, params.noise_sd));
        }
        if let Some(k) = kind {
            let end = values.len();
            if end > start {
                // For the fumble, only the holster tail is anomalous.
                let (iv, label) = match k {
                    VideoAnomaly::FumbledHolster => (
                        Interval::new(start + (this_len * 7) / 10, end),
                        "fumbled holster".to_string(),
                    ),
                    VideoAnomaly::AbortedDraw => {
                        (Interval::new(start, end), "aborted draw".to_string())
                    }
                };
                anomalies.push(LabeledAnomaly {
                    interval: iv,
                    label,
                });
            }
        }
        cycle_idx += 1;
    }

    Dataset::new(
        TimeSeries::named("Video gun-draw (synthetic)", values),
        anomalies,
    )
}

/// The paper-default instance: 11,251 samples with two anomalous
/// repetitions (Figure 1 shows multiple anomalous events).
pub fn video_gun() -> Dataset {
    generate(VideoParams::default())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_shape() {
        let d = video_gun();
        assert_eq!(d.series.len(), 11_251);
        assert_eq!(d.anomalies.len(), 2);
        // Anomalies are cycle-scale events.
        for a in &d.anomalies {
            assert!(
                a.interval.len() > 30 && a.interval.len() < 500,
                "{}",
                a.interval
            );
        }
    }

    #[test]
    fn cycles_repeat() {
        let d = generate(VideoParams {
            noise_sd: 0.0,
            jitter: 0.0,
            anomalous_cycles: vec![],
            ..Default::default()
        });
        let v = d.series.values();
        // With zero jitter, cycle k and k+1 are identical.
        let c = 300;
        for i in 0..c {
            assert!((v[i] - v[i + c]).abs() < 1e-12);
        }
    }

    #[test]
    fn fumble_differs_from_normal_tail() {
        let normal = generate(VideoParams {
            noise_sd: 0.0,
            jitter: 0.0,
            anomalous_cycles: vec![],
            ..Default::default()
        });
        let fumbled = generate(VideoParams {
            noise_sd: 0.0,
            jitter: 0.0,
            anomalous_cycles: vec![(2, VideoAnomaly::FumbledHolster)],
            ..Default::default()
        });
        let a = &normal.series.values()[600..900];
        let b = &fumbled.series.values()[600..900];
        let max_diff = a
            .iter()
            .zip(b)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0f64, f64::max);
        assert!(max_diff > 0.1, "fumble indistinguishable: {max_diff}");
        // Pre-anomaly cycles identical.
        let a0 = &normal.series.values()[..600];
        let b0 = &fumbled.series.values()[..600];
        assert_eq!(a0, b0);
    }

    #[test]
    fn aborted_draw_peaks_lower() {
        let d = generate(VideoParams {
            noise_sd: 0.0,
            jitter: 0.0,
            anomalous_cycles: vec![(1, VideoAnomaly::AbortedDraw)],
            ..Default::default()
        });
        let v = d.series.values();
        let normal_peak = v[0..300].iter().fold(f64::NEG_INFINITY, |m, &x| m.max(x));
        let aborted_peak = v[300..600].iter().fold(f64::NEG_INFINITY, |m, &x| m.max(x));
        assert!(normal_peak > 0.85);
        assert!(aborted_peak < 0.6);
    }

    #[test]
    fn deterministic() {
        assert_eq!(video_gun().series.values(), video_gun().series.values());
    }
}
