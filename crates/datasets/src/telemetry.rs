//! Space-shuttle Marotta valve telemetry analogues (TEK14 / TEK16 / TEK17
//! in Table 1).
//!
//! The original TEK series record solenoid current through repeated
//! energize/de-energize cycles: a sharp rise, a sagging plateau, a sharp
//! drop with a small inductive undershoot, then an off period. Each TEK
//! variant here plants a different malfunction kind, mirroring how the
//! three NASA records differ:
//!
//! * **TEK14** — a mid-plateau dropout glitch in one cycle;
//! * **TEK16** — one weak cycle (partial energization);
//! * **TEK17** — a noise burst / spike train during one off period.

use gv_timeseries::{Interval, TimeSeries};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::dataset::{Dataset, LabeledAnomaly};
use crate::noise::Gaussian;

/// Malfunction kinds for the TEK variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TelemetryAnomaly {
    /// Momentary dropout while energized.
    PlateauDropout,
    /// The valve only partially energizes for one cycle.
    WeakCycle,
    /// A spike burst while de-energized.
    OffSpikes,
}

/// Telemetry generator parameters.
#[derive(Debug, Clone)]
pub struct TelemetryParams {
    /// Total samples (TEK rows use 5,000).
    pub len: usize,
    /// Samples per energize/de-energize cycle.
    pub cycle_len: usize,
    /// Cycle indexes to corrupt.
    pub anomalous_cycles: Vec<(usize, TelemetryAnomaly)>,
    /// Sensor noise sd (plateau level is ~1.0).
    pub noise_sd: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TelemetryParams {
    fn default() -> Self {
        Self {
            len: 5000,
            cycle_len: 500,
            anomalous_cycles: vec![(5, TelemetryAnomaly::PlateauDropout)],
            noise_sd: 0.002,
            seed: 0x7E6,
        }
    }
}

fn smooth_step(t: f64) -> f64 {
    let t = t.clamp(0.0, 1.0);
    t * t * (3.0 - 2.0 * t)
}

/// One cycle sample: energized for the first half, off for the second.
fn cycle_value(phase: f64, kind: Option<TelemetryAnomaly>) -> f64 {
    // A partial energization is not just weaker: the armature moves
    // sluggishly, so the current rises slowly and sags much harder (shape
    // differences matter — a pure amplitude change would be erased by
    // z-normalization and invisible to every shape-based detector).
    let weak = kind == Some(TelemetryAnomaly::WeakCycle);
    let amplitude = if weak { 0.55 } else { 1.0 };
    let rise = if weak {
        smooth_step((phase - 0.02) / 0.16)
    } else {
        smooth_step((phase - 0.02) / 0.03)
    };
    let fall = smooth_step((phase - 0.50) / 0.03);
    // Sagging plateau: a downward slope while energized.
    let sag_rate = if weak { 0.30 } else { 0.08 };
    let sag = if (0.05..0.50).contains(&phase) {
        sag_rate * (phase - 0.05) / 0.45
    } else {
        0.0
    };
    let mut v = amplitude * (rise - fall).max(0.0) - sag * amplitude;
    // Solenoid current ripple while energized and a faint thermal-drift
    // wobble while off: real telemetry is textured, never flat, and this
    // texture is what makes SAX words stable over plateau windows (a flat
    // plateau plus sensor noise discretizes to *random* words).
    if (0.05..0.50).contains(&phase) {
        v += 0.05 * (phase * 32.0 * std::f64::consts::TAU).sin();
    } else if (0.60..0.98).contains(&phase) {
        v += 0.02 * (phase * 18.0 * std::f64::consts::TAU).sin();
    }
    // Inductive undershoot right after de-energization.
    if (0.53..0.60).contains(&phase) {
        let t = (phase - 0.53) / 0.07;
        v -= 0.15 * (1.0 - t) * (std::f64::consts::PI * t).sin();
    }
    match kind {
        Some(TelemetryAnomaly::PlateauDropout) if (0.22..0.36).contains(&phase) => {
            let t = (phase - 0.22) / 0.14;
            v -= 0.8 * (std::f64::consts::PI * t).sin();
        }
        _ => {}
    }
    v
}

/// Generates a telemetry dataset.
pub fn generate(params: TelemetryParams) -> Dataset {
    let mut rng = StdRng::seed_from_u64(params.seed);
    let mut gauss = Gaussian::new();
    let mut values = Vec::with_capacity(params.len);
    let mut anomalies = Vec::new();

    let n_cycles = params.len.div_ceil(params.cycle_len);
    for cycle in 0..n_cycles {
        let kind = params
            .anomalous_cycles
            .iter()
            .find(|(c, _)| *c == cycle)
            .map(|&(_, k)| k);
        let start = values.len();
        for i in 0..params.cycle_len {
            if values.len() >= params.len {
                break;
            }
            let phase = i as f64 / params.cycle_len as f64;
            let mut v = cycle_value(phase, kind);
            // Spike burst during the off half.
            if kind == Some(TelemetryAnomaly::OffSpikes)
                && (0.65..0.85).contains(&phase)
                && rng.gen_bool(0.3)
            {
                v += rng.gen_range(0.2..0.5);
            }
            values.push(v + gauss.sample_with(&mut rng, 0.0, params.noise_sd));
        }
        if let Some(k) = kind {
            let end = values.len().min(start + params.cycle_len);
            let c = params.cycle_len;
            let (lo, hi, label) = match k {
                TelemetryAnomaly::PlateauDropout => (
                    start + c * 22 / 100,
                    start + c * 36 / 100,
                    "plateau dropout glitch",
                ),
                TelemetryAnomaly::WeakCycle => (start, end, "weak energization cycle"),
                TelemetryAnomaly::OffSpikes => (
                    start + c * 65 / 100,
                    start + c * 85 / 100,
                    "off-period spike burst",
                ),
            };
            if lo < values.len() {
                anomalies.push(LabeledAnomaly {
                    interval: Interval::new(lo, hi.min(values.len())),
                    label: label.into(),
                });
            }
        }
    }

    Dataset::new(
        TimeSeries::named("telemetry (synthetic)", values),
        anomalies,
    )
}

/// `Shuttle telemetry TEK14` analogue: plateau dropout.
pub fn tek14() -> Dataset {
    let mut d = generate(TelemetryParams {
        anomalous_cycles: vec![(5, TelemetryAnomaly::PlateauDropout)],
        seed: 0x7E14,
        ..Default::default()
    });
    d.series.set_name("Shuttle telemetry TEK14 (synthetic)");
    d
}

/// `Shuttle telemetry TEK16` analogue: weak cycle.
pub fn tek16() -> Dataset {
    let mut d = generate(TelemetryParams {
        anomalous_cycles: vec![(6, TelemetryAnomaly::WeakCycle)],
        seed: 0x7E16,
        ..Default::default()
    });
    d.series.set_name("Shuttle telemetry TEK16 (synthetic)");
    d
}

/// `Shuttle telemetry TEK17` analogue: off-period spikes.
pub fn tek17() -> Dataset {
    let mut d = generate(TelemetryParams {
        anomalous_cycles: vec![(3, TelemetryAnomaly::OffSpikes)],
        seed: 0x7E17,
        ..Default::default()
    });
    d.series.set_name("Shuttle telemetry TEK17 (synthetic)");
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_expected_shape() {
        for (d, label_frag) in [(tek14(), "dropout"), (tek16(), "weak"), (tek17(), "spike")] {
            assert_eq!(d.series.len(), 5000);
            assert_eq!(d.anomalies.len(), 1, "{}", d.series.name());
            assert!(d.anomalies[0].label.contains(label_frag));
        }
    }

    #[test]
    fn cycles_alternate_on_off() {
        let d = generate(TelemetryParams {
            noise_sd: 0.0,
            anomalous_cycles: vec![],
            ..Default::default()
        });
        let v = d.series.values();
        // Energized mid-plateau ~0.93+, off period ~0.
        assert!(v[100] > 0.8, "plateau {v:.3?}", v = v[100]);
        assert!(v[400].abs() < 0.05, "off {}", v[400]);
        assert!(v[600] > 0.8);
    }

    #[test]
    fn dropout_dips_below_plateau() {
        let d = generate(TelemetryParams {
            noise_sd: 0.0,
            anomalous_cycles: vec![(1, TelemetryAnomaly::PlateauDropout)],
            ..Default::default()
        });
        let v = d.series.values();
        let iv = d.anomalies[0].interval;
        let dip = v[iv.start..iv.end]
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min);
        assert!(dip < 0.5, "dropout min {dip}");
        // Same phase in a clean cycle stays high.
        let clean = v[iv.start + 500..iv.end + 500]
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min);
        assert!(clean > 0.8);
    }

    #[test]
    fn weak_cycle_peaks_lower() {
        let d = generate(TelemetryParams {
            noise_sd: 0.0,
            anomalous_cycles: vec![(2, TelemetryAnomaly::WeakCycle)],
            ..Default::default()
        });
        let v = d.series.values();
        let weak_peak = v[1000..1250]
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max);
        let normal_peak = v[0..250].iter().copied().fold(f64::NEG_INFINITY, f64::max);
        assert!(weak_peak < 0.6, "weak {weak_peak}");
        assert!(normal_peak > 0.9, "normal {normal_peak}");
    }

    #[test]
    fn spikes_visible_in_off_period() {
        let d = tek17();
        let iv = d.anomalies[0].interval;
        let v = d.series.values();
        let burst_max = v[iv.start..iv.end]
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(burst_max > 0.15, "burst max {burst_max}");
    }

    #[test]
    fn deterministic() {
        assert_eq!(tek14().series.values(), tek14().series.values());
    }
}
