//! The Table 1 experiment registry: every row of the paper's performance
//! comparison, mapped to its synthetic dataset and the discretization
//! parameters `(window, PAA, alphabet)` the paper prints for it.
//!
//! The two half-million-point MIT-BIH records (ECG 300 / ECG 318) are
//! scaled down by default so the whole table regenerates in minutes on a
//! laptop; the row carries both the paper's original length and ours.

use crate::dataset::Dataset;
use crate::{ecg, power, respiration, telemetry, trajectory, video};

/// One Table 1 row: dataset + the paper's parameters for it.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Row label as printed in the paper.
    pub name: &'static str,
    /// Sliding-window length `W`.
    pub window: usize,
    /// PAA size `P`.
    pub paa: usize,
    /// Alphabet size `A`.
    pub alphabet: usize,
    /// Series length in the paper.
    pub paper_len: usize,
    /// The generated analogue.
    pub dataset: Dataset,
}

/// Builds every Table 1 row. `scale_large` shrinks the two ~550k-point ECG
/// records to the given length (pass `None` for full paper size — slow).
pub fn rows(scale_large: Option<usize>) -> Vec<Table1Row> {
    let large = scale_large.unwrap_or(536_976);
    let large2 = scale_large.unwrap_or(586_086);
    vec![
        Table1Row {
            name: "Daily commute",
            window: 350,
            paa: 15,
            alphabet: 4,
            paper_len: 17_175,
            dataset: trajectory::daily_commute().dataset,
        },
        Table1Row {
            name: "Dutch power demand",
            window: 750,
            paa: 6,
            alphabet: 3,
            paper_len: 35_040,
            dataset: power::power_demand(),
        },
        Table1Row {
            name: "ECG 0606",
            window: 120,
            paa: 4,
            alphabet: 4,
            paper_len: 2_300,
            dataset: ecg::ecg0606(ecg::EcgParams::default()),
        },
        Table1Row {
            name: "ECG 308",
            window: 300,
            paa: 4,
            alphabet: 4,
            paper_len: 5_400,
            dataset: ecg::ecg_record("ECG 308 (synthetic)", 5_400, 300, 1, 0x308),
        },
        Table1Row {
            name: "ECG 15",
            window: 300,
            paa: 4,
            alphabet: 4,
            paper_len: 15_000,
            dataset: ecg::ecg_record("ECG 15 (synthetic)", 15_000, 300, 1, 0x15),
        },
        Table1Row {
            name: "ECG 108",
            window: 300,
            paa: 4,
            alphabet: 4,
            paper_len: 21_600,
            dataset: ecg::ecg_record("ECG 108 (synthetic)", 21_600, 300, 2, 0x108),
        },
        Table1Row {
            name: "ECG 300",
            window: 300,
            paa: 4,
            alphabet: 4,
            paper_len: 536_976,
            dataset: ecg::ecg_record("ECG 300 (synthetic)", large, 300, 3, 0x300),
        },
        Table1Row {
            name: "ECG 318",
            window: 300,
            paa: 4,
            alphabet: 4,
            paper_len: 586_086,
            dataset: ecg::ecg_record("ECG 318 (synthetic)", large2, 300, 3, 0x318),
        },
        Table1Row {
            name: "Respiration NPRS 43",
            window: 128,
            paa: 5,
            alphabet: 4,
            paper_len: 4_000,
            dataset: respiration::nprs43(),
        },
        Table1Row {
            name: "Respiration NPRS 44",
            window: 128,
            paa: 5,
            alphabet: 4,
            paper_len: 24_125,
            dataset: respiration::nprs44(),
        },
        Table1Row {
            name: "Video dataset (gun)",
            window: 150,
            paa: 5,
            alphabet: 3,
            paper_len: 11_251,
            dataset: video::video_gun(),
        },
        Table1Row {
            name: "Shuttle telemetry TEK14",
            window: 128,
            paa: 4,
            alphabet: 4,
            paper_len: 5_000,
            dataset: telemetry::tek14(),
        },
        Table1Row {
            name: "Shuttle telemetry TEK16",
            window: 128,
            paa: 4,
            alphabet: 4,
            paper_len: 5_000,
            dataset: telemetry::tek16(),
        },
        Table1Row {
            name: "Shuttle telemetry TEK17",
            window: 128,
            paa: 4,
            alphabet: 4,
            paper_len: 5_000,
            dataset: telemetry::tek17(),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fourteen_rows_like_the_paper() {
        let rows = rows(Some(40_000));
        assert_eq!(rows.len(), 14);
        for row in &rows {
            assert!(
                row.window > 0 && row.paa > 0 && row.alphabet >= 2,
                "{}",
                row.name
            );
            assert!(!row.dataset.series.is_empty(), "{}", row.name);
            assert!(
                !row.dataset.anomalies.is_empty(),
                "{} has no ground truth",
                row.name
            );
            // Window must fit the generated series with room for matches.
            assert!(row.dataset.series.len() >= 2 * row.window, "{}", row.name);
        }
    }

    #[test]
    fn small_rows_match_paper_lengths() {
        let rows = rows(Some(40_000));
        for row in &rows {
            if row.paper_len <= 36_000 && row.name != "Daily commute" {
                assert_eq!(
                    row.dataset.series.len(),
                    row.paper_len,
                    "{} length mismatch",
                    row.name
                );
            }
        }
    }

    #[test]
    fn scaling_applies_to_large_ecgs() {
        let rows = rows(Some(50_000));
        let ecg300 = rows.iter().find(|r| r.name == "ECG 300").unwrap();
        assert_eq!(ecg300.dataset.series.len(), 50_000);
        assert_eq!(ecg300.paper_len, 536_976);
    }
}
