//! GPS commute-trajectory analogue (the "Daily commute" Table 1 row and
//! the §5.1 case study, Figures 7–9).
//!
//! Simulates two weeks of commuting on a grid city: every day a morning
//! trip home → work and an evening trip back, by car on most days and by
//! bicycle (a different route) twice a week. Two anomalies are planted,
//! mirroring the paper's findings:
//!
//! * a one-off **detour** on one trip (a path travelled only once — found
//!   by the rule-density curve in the paper);
//! * a **partial-GPS-fix** segment on another trip (positions scatter
//!   around the route — found by RRA as the best discord).
//!
//! The multi-dimensional track is reduced to a scalar series via the
//! Hilbert space-filling curve (order 8, as in the paper) before analysis.

use gv_hilbert::TrajectoryMapper;
use gv_timeseries::Interval;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::dataset::{Dataset, LabeledAnomaly};
use crate::noise::Gaussian;

/// Trajectory generator parameters.
#[derive(Debug, Clone)]
pub struct TrajectoryParams {
    /// Number of commute days (2 trips per day).
    pub days: usize,
    /// Distance advanced per GPS sample.
    pub speed: f64,
    /// GPS noise sd under a good fix (map units; city block is ~10).
    pub noise_sd: f64,
    /// Day (0-based) whose morning trip takes the one-off detour.
    pub detour_day: Option<usize>,
    /// Day whose evening trip suffers a partial GPS fix.
    pub gps_loss_day: Option<usize>,
    /// Hilbert curve order (the paper uses 8).
    pub hilbert_order: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TrajectoryParams {
    fn default() -> Self {
        Self {
            days: 14,
            speed: 0.35,
            noise_sd: 0.08,
            detour_day: Some(9),
            gps_loss_day: Some(4),
            hilbert_order: 8,
            seed: 0x6B5,
        }
    }
}

/// A generated commute: the raw 2-D track, the Hilbert mapper, and the
/// transformed scalar [`Dataset`] with planted ground truth.
#[derive(Debug, Clone)]
pub struct TrajectoryData {
    /// Raw GPS points, in time order.
    pub points: Vec<(f64, f64)>,
    /// The Hilbert mapper fitted to the track.
    pub mapper: TrajectoryMapper,
    /// The Hilbert-transformed series plus anomaly labels (indexes refer to
    /// `points` one-to-one).
    pub dataset: Dataset,
}

const HOME: (f64, f64) = (10.0, 10.0);
const WORK: (f64, f64) = (80.0, 70.0);

/// The usual car route (Manhattan-style streets).
fn car_route() -> Vec<(f64, f64)> {
    vec![HOME, (10.0, 40.0), (50.0, 40.0), (50.0, 70.0), WORK]
}

/// The bicycle route: different streets, same endpoints.
fn bike_route() -> Vec<(f64, f64)> {
    vec![
        HOME,
        (30.0, 10.0),
        (30.0, 55.0),
        (65.0, 55.0),
        (65.0, 70.0),
        WORK,
    ]
}

/// The detour variant of the car route: a unique excursion in the middle.
fn detour_route() -> Vec<(f64, f64)> {
    vec![
        HOME,
        (10.0, 40.0),
        (50.0, 40.0),
        // one-off excursion east through streets never otherwise used
        (72.0, 40.0),
        (72.0, 22.0),
        (88.0, 22.0),
        (88.0, 48.0),
        (50.0, 48.0),
        (50.0, 70.0),
        WORK,
    ]
}

fn reversed(mut route: Vec<(f64, f64)>) -> Vec<(f64, f64)> {
    route.reverse();
    route
}

/// Densely samples a waypoint polyline at constant speed.
fn sample_route(
    route: &[(f64, f64)],
    speed: f64,
    noise_sd: f64,
    rng: &mut StdRng,
    gauss: &mut Gaussian,
    out: &mut Vec<(f64, f64)>,
) {
    for seg in route.windows(2) {
        let (x0, y0) = seg[0];
        let (x1, y1) = seg[1];
        let len = ((x1 - x0).powi(2) + (y1 - y0).powi(2)).sqrt();
        let steps = (len / speed).ceil().max(1.0) as usize;
        for s in 0..steps {
            let t = s as f64 / steps as f64;
            out.push((
                x0 + t * (x1 - x0) + gauss.sample_with(rng, 0.0, noise_sd),
                y0 + t * (y1 - y0) + gauss.sample_with(rng, 0.0, noise_sd),
            ));
        }
    }
    let last = route[route.len() - 1];
    out.push(last);
}

/// Generates the commute and its Hilbert-transformed dataset.
pub fn generate(params: TrajectoryParams) -> TrajectoryData {
    let mut rng = StdRng::seed_from_u64(params.seed);
    let mut gauss = Gaussian::new();
    let mut points: Vec<(f64, f64)> = Vec::new();
    let mut detour_span: Option<Interval> = None;
    let mut gps_span: Option<Interval> = None;

    for day in 0..params.days {
        let by_bike = day % 7 == 2 || day % 7 == 5; // two bike days a week
                                                    // Morning: home → work.
        let morning: Vec<(f64, f64)> = if params.detour_day == Some(day) {
            detour_route()
        } else if by_bike {
            bike_route()
        } else {
            car_route()
        };
        let start = points.len();
        sample_route(
            &morning,
            params.speed,
            params.noise_sd,
            &mut rng,
            &mut gauss,
            &mut points,
        );
        if params.detour_day == Some(day) {
            // The detour is the excursion part: everything differing from
            // the plain car route. Conservatively mark the middle 60% of
            // the trip (the excursion waypoints 2..=7 dominate it).
            let len = points.len() - start;
            detour_span = Some(Interval::new(
                start + len * 25 / 100,
                start + len * 80 / 100,
            ));
        }

        // Evening: work → home.
        let evening: Vec<(f64, f64)> = if by_bike {
            reversed(bike_route())
        } else {
            reversed(car_route())
        };
        let estart = points.len();
        sample_route(
            &evening,
            params.speed,
            params.noise_sd,
            &mut rng,
            &mut gauss,
            &mut points,
        );
        if params.gps_loss_day == Some(day) {
            // Corrupt the middle third of the evening trip with a partial
            // fix: positions scatter widely around the route.
            let elen = points.len() - estart;
            let lo = estart + elen / 3;
            let hi = estart + 2 * elen / 3;
            for p in points[lo..hi].iter_mut() {
                p.0 += gauss.sample_with(&mut rng, 0.0, 3.0);
                p.1 += gauss.sample_with(&mut rng, 0.0, 3.0);
            }
            gps_span = Some(Interval::new(lo, hi));
        }
        // Parking-lot loop at work on car days (a small ritual pattern that
        // gives the grammar extra structure, echoing Figure 9's story).
        if !by_bike {
            let lot = vec![WORK, (84.0, 72.0), (84.0, 76.0), (80.0, 76.0), WORK];
            sample_route(
                &lot,
                params.speed,
                params.noise_sd,
                &mut rng,
                &mut gauss,
                &mut points,
            );
        }
        let _ = rng.gen::<u32>(); // day separator draw keeps streams aligned
    }

    let mapper = TrajectoryMapper::fitting(params.hilbert_order, &points)
        // gv-lint: allow(no-unwrap-in-lib) the synthetic generator always emits >= 2 distinct points, so the bounding box cannot degenerate
        .expect("commute track always spans a non-degenerate box");
    let series = mapper.transform(&points);
    let mut series = series;
    series.set_name("Daily commute (synthetic)");

    let mut anomalies = Vec::new();
    if let Some(iv) = detour_span {
        anomalies.push(LabeledAnomaly {
            interval: iv,
            label: "one-off detour".into(),
        });
    }
    if let Some(iv) = gps_span {
        anomalies.push(LabeledAnomaly {
            interval: iv,
            label: "partial GPS fix".into(),
        });
    }

    TrajectoryData {
        points,
        mapper,
        dataset: Dataset::new(series, anomalies),
    }
}

/// The paper-default instance (≈17k samples, like Table 1's 17,175).
pub fn daily_commute() -> TrajectoryData {
    generate(TrajectoryParams::default())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_shape() {
        let t = daily_commute();
        assert_eq!(t.points.len(), t.dataset.series.len());
        // Series length in the Table 1 ballpark (17,175 in the paper).
        let n = t.dataset.series.len();
        assert!((10_000..30_000).contains(&n), "length {n}");
        assert_eq!(t.dataset.anomalies.len(), 2);
    }

    #[test]
    fn anomaly_labels() {
        let t = daily_commute();
        let labels: Vec<&str> = t
            .dataset
            .anomalies
            .iter()
            .map(|a| a.label.as_str())
            .collect();
        assert!(labels.contains(&"one-off detour"));
        assert!(labels.contains(&"partial GPS fix"));
    }

    #[test]
    fn detour_visits_unique_cells() {
        let t = daily_commute();
        let detour = t
            .dataset
            .anomalies
            .iter()
            .find(|a| a.label.contains("detour"))
            .unwrap()
            .interval;
        // Curve indexes inside the detour that appear nowhere else.
        let vals = t.dataset.series.values();
        let inside: std::collections::HashSet<u64> = vals[detour.start..detour.end]
            .iter()
            .map(|&v| v as u64)
            .collect();
        let outside: std::collections::HashSet<u64> = vals[..detour.start]
            .iter()
            .chain(&vals[detour.end..])
            .map(|&v| v as u64)
            .collect();
        let unique = inside.difference(&outside).count();
        assert!(unique > 5, "only {unique} unique detour cells");
    }

    #[test]
    fn routes_repeat_across_days() {
        let t = generate(TrajectoryParams {
            days: 2,
            detour_day: None,
            gps_loss_day: None,
            noise_sd: 0.0,
            ..Default::default()
        });
        let v = t.dataset.series.values();
        // Days 0 and 1 are both car days with identical noiseless geometry,
        // so the two halves of the series are cell-for-cell identical.
        let day_len = v.len() / 2;
        let a = &v[..day_len];
        let b = &v[day_len..2 * day_len];
        let same = a.iter().zip(b).filter(|(x, y)| x == y).count();
        assert!(same * 10 >= a.len() * 9, "{same}/{}", a.len());
    }

    #[test]
    fn gps_loss_scatters_points() {
        let t = daily_commute();
        let iv = t
            .dataset
            .anomalies
            .iter()
            .find(|a| a.label.contains("GPS"))
            .unwrap()
            .interval;
        // Consecutive curve indexes jump around far more inside the loss
        // segment than outside.
        let v = t.dataset.series.values();
        let jump = |range: std::ops::Range<usize>| {
            let w = &v[range];
            w.windows(2).map(|p| (p[0] - p[1]).abs()).sum::<f64>() / (w.len() - 1) as f64
        };
        let inside = jump(iv.start..iv.end);
        let before = jump(0..iv.start.min(2000));
        assert!(inside > before * 3.0, "inside {inside} vs before {before}");
    }

    #[test]
    fn deterministic() {
        let a = daily_commute();
        let b = daily_commute();
        assert_eq!(a.dataset.series.values(), b.dataset.series.values());
    }
}
