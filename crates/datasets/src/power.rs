//! Dutch power demand analogue (van Wijk & van Selow's 1997 research-
//! facility consumption record; Table 1 row "Dutch power demand",
//! Figures 3–4).
//!
//! 15-minute sampling for a full year: 365 days × 96 samples = 35,040
//! points. Weekdays show a characteristic two-hump office-hours plateau,
//! weekends stay low. The paper's three discords are *state holidays* —
//! weekdays on which the facility was closed, so the day looks like a
//! weekend day inside an otherwise normal week. We plant exactly that.

use gv_timeseries::{Interval, TimeSeries};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::dataset::{Dataset, LabeledAnomaly};
use crate::noise::Gaussian;

/// Samples per day at 15-minute resolution.
pub const SAMPLES_PER_DAY: usize = 96;
/// Days generated (one year).
pub const DAYS: usize = 365;

/// Power-demand generator parameters.
#[derive(Debug, Clone)]
pub struct PowerParams {
    /// Day-of-year (0-based) of each planted holiday plus its name.
    /// Defaults follow the paper's story: Queen's Birthday (Wed Apr 30),
    /// Liberation Day (Mon May 5), Ascension Day (Thu May 8).
    pub holidays: Vec<(usize, &'static str)>,
    /// Which weekday day-0 falls on (0 = Monday). 1997-01-01 was a
    /// Wednesday.
    pub first_weekday: usize,
    /// Measurement noise (demand units; weekday peak is ~1.0).
    pub noise_sd: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PowerParams {
    fn default() -> Self {
        Self {
            // 1997 day-of-year (0-based): Mar 25 = 83, Mar 28 = 86,
            // Apr 30 = 119, May 5 = 124, May 8 = 127. These are the
            // holidays Figure 4 names; adjacent ones share a week, so the
            // ranked discords are the three interrupted weeks.
            holidays: vec![
                (83, "Annunciation"),
                (86, "Good Friday"),
                (119, "Queen's Birthday"),
                (124, "Liberation Day"),
                (127, "Ascension Day"),
            ],
            first_weekday: 2, // Wednesday
            noise_sd: 0.015,
            seed: 0x9077,
        }
    }
}

/// Demand for one in-day sample of a working day: night base, morning
/// ramp, two-hump office plateau, evening decline.
fn weekday_profile(t: f64) -> f64 {
    // t ∈ [0, 1) over the day.
    let base = 0.25;
    // Office hours ~7:30–18:00 → t in [0.31, 0.75].
    let office = smooth_step(t, 0.29, 0.34) * (1.0 - smooth_step(t, 0.72, 0.78));
    // Two humps (morning/afternoon) with a lunch dip.
    let humps = 0.62 + 0.10 * ((t - 0.40) * 40.0).cos().max(-1.0) * hump_window(t);
    base + office * humps
}

fn hump_window(t: f64) -> f64 {
    if (0.32..0.75).contains(&t) {
        1.0
    } else {
        0.0
    }
}

/// Weekend/holiday: flat low demand with a faint daytime rise.
fn weekend_profile(t: f64) -> f64 {
    0.25 + 0.05 * smooth_step(t, 0.3, 0.5) * (1.0 - smooth_step(t, 0.6, 0.9))
}

fn smooth_step(t: f64, lo: f64, hi: f64) -> f64 {
    if t <= lo {
        0.0
    } else if t >= hi {
        1.0
    } else {
        let x = (t - lo) / (hi - lo);
        x * x * (3.0 - 2.0 * x)
    }
}

/// Generates the one-year demand series.
pub fn generate(params: PowerParams) -> Dataset {
    let mut rng = StdRng::seed_from_u64(params.seed);
    let mut gauss = Gaussian::new();
    let mut values = Vec::with_capacity(DAYS * SAMPLES_PER_DAY);
    let mut anomalies = Vec::new();

    for day in 0..DAYS {
        let weekday = (params.first_weekday + day) % 7;
        let is_weekend = weekday >= 5;
        let holiday = params.holidays.iter().find(|(d, _)| *d == day);
        let acts_like_weekend = is_weekend || holiday.is_some();
        let start = values.len();
        for s in 0..SAMPLES_PER_DAY {
            let t = s as f64 / SAMPLES_PER_DAY as f64;
            let v = if acts_like_weekend {
                weekend_profile(t)
            } else {
                weekday_profile(t)
            };
            values.push(v + gauss.sample_with(&mut rng, 0.0, params.noise_sd));
        }
        if let Some((_, name)) = holiday {
            // The anomaly is a *weekday* that behaves like a weekend; a
            // holiday landing on a weekend would be invisible, so only
            // weekday holidays are labelled.
            if !is_weekend {
                anomalies.push(LabeledAnomaly {
                    interval: Interval::new(start, values.len()),
                    label: format!("holiday: {name}"),
                });
            }
        }
    }

    Dataset::new(
        TimeSeries::named("Dutch power demand (synthetic)", values),
        anomalies,
    )
}

/// The paper-default instance: 35,040 samples, five weekday holidays in
/// three separate weeks (Figure 4's calendar).
pub fn power_demand() -> Dataset {
    generate(PowerParams::default())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_year_length() {
        let d = power_demand();
        assert_eq!(d.series.len(), 35_040);
        assert_eq!(d.anomalies.len(), 5);
    }

    #[test]
    fn holidays_are_on_weekdays_and_day_aligned() {
        let d = power_demand();
        for a in &d.anomalies {
            assert_eq!(a.interval.len(), SAMPLES_PER_DAY);
            assert_eq!(a.interval.start % SAMPLES_PER_DAY, 0);
            let day = a.interval.start / SAMPLES_PER_DAY;
            let weekday = (2 + day) % 7;
            assert!(weekday < 5, "holiday {} fell on weekend", a.label);
        }
    }

    #[test]
    fn weekdays_higher_than_weekends() {
        let d = generate(PowerParams {
            noise_sd: 0.0,
            holidays: vec![],
            ..Default::default()
        });
        let v = d.series.values();
        // Day 5 (Monday, since day 0 = Wednesday): weekday.
        let monday: f64 = v[5 * 96..6 * 96].iter().sum();
        // Day 3 (Saturday): weekend.
        let saturday: f64 = v[3 * 96..4 * 96].iter().sum();
        assert!(
            monday > saturday * 1.3,
            "monday {monday} saturday {saturday}"
        );
    }

    #[test]
    fn holiday_day_looks_like_weekend() {
        let d = generate(PowerParams {
            noise_sd: 0.0,
            ..Default::default()
        });
        let v = d.series.values();
        let holiday = &v[119 * 96..120 * 96];
        let saturday = &v[3 * 96..4 * 96];
        let max_diff = holiday
            .iter()
            .zip(saturday)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(
            max_diff < 1e-9,
            "holiday profile differs from weekend by {max_diff}"
        );
    }

    #[test]
    fn weekend_holidays_not_labelled() {
        // Day 3 is a Saturday (first_weekday=2 → d0=Wed, d3=Sat).
        let d = generate(PowerParams {
            holidays: vec![(3, "Weekend Holiday"), (5, "Monday Holiday")],
            ..Default::default()
        });
        assert_eq!(d.anomalies.len(), 1);
        assert!(d.anomalies[0].label.contains("Monday"));
    }

    #[test]
    fn deterministic() {
        assert_eq!(
            power_demand().series.values(),
            power_demand().series.values()
        );
    }
}
