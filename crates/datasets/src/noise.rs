//! Gaussian noise without external distribution crates.

use rand::Rng;

/// A Box–Muller standard-normal sampler over any [`Rng`].
///
/// Caches the second variate of each Box–Muller pair, so consecutive draws
/// cost one transcendental pair per two samples.
#[derive(Debug, Clone, Default)]
pub struct Gaussian {
    spare: Option<f64>,
}

impl Gaussian {
    /// A fresh sampler.
    pub fn new() -> Self {
        Self::default()
    }

    /// One standard-normal sample.
    pub fn sample<R: Rng>(&mut self, rng: &mut R) -> f64 {
        if let Some(z) = self.spare.take() {
            return z;
        }
        // Box–Muller: u1 ∈ (0, 1] avoids ln(0).
        let u1: f64 = 1.0 - rng.gen::<f64>();
        let u2: f64 = rng.gen();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.spare = Some(r * theta.sin());
        r * theta.cos()
    }

    /// One `N(mean, sd²)` sample.
    pub fn sample_with<R: Rng>(&mut self, rng: &mut R, mean: f64, sd: f64) -> f64 {
        mean + sd * self.sample(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn moments_approximately_standard() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut g = Gaussian::new();
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| g.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn scaled_sampling() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut g = Gaussian::new();
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| g.sample_with(&mut rng, 10.0, 0.5)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn deterministic_with_seed() {
        let a: Vec<f64> = {
            let mut rng = StdRng::seed_from_u64(1);
            let mut g = Gaussian::new();
            (0..10).map(|_| g.sample(&mut rng)).collect()
        };
        let b: Vec<f64> = {
            let mut rng = StdRng::seed_from_u64(1);
            let mut g = Gaussian::new();
            (0..10).map(|_| g.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn all_finite() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut g = Gaussian::new();
        assert!((0..10_000).all(|_| g.sample(&mut rng).is_finite()));
    }
}
