//! Respiration analogues (the NPRS 43/44 records of Table 1: nasal
//! pressure respiration signals with a planted breathing irregularity).
//!
//! The signal is a frequency- and amplitude-modulated breathing sinusoid;
//! the planted anomaly is an apnea-like episode — breathing amplitude
//! collapses for a few cycles, with a slow baseline drift — followed by a
//! recovery gasp.

use gv_timeseries::{Interval, TimeSeries};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::dataset::{Dataset, LabeledAnomaly};
use crate::noise::Gaussian;

/// Respiration generator parameters.
#[derive(Debug, Clone)]
pub struct RespirationParams {
    /// Total samples.
    pub len: usize,
    /// Samples per breath cycle (~32 at 10 Hz sampling, 0.3 Hz breathing).
    pub cycle_len: f64,
    /// Apnea episodes as `(start_sample, length_samples)`.
    pub apneas: Vec<(usize, usize)>,
    /// Measurement noise sd (breathing amplitude is ~1.0).
    pub noise_sd: f64,
    /// Slow modulation depth of rate and amplitude (0..1).
    pub modulation: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RespirationParams {
    fn default() -> Self {
        Self {
            len: 4000,
            cycle_len: 33.0,
            apneas: vec![(2200, 150)],
            noise_sd: 0.03,
            modulation: 0.12,
            seed: 0x4E5,
        }
    }
}

/// Generates a respiration-like dataset.
pub fn generate(params: RespirationParams) -> Dataset {
    let mut rng = StdRng::seed_from_u64(params.seed);
    let mut gauss = Gaussian::new();
    let mut values = Vec::with_capacity(params.len);

    // Random but smooth modulation phases.
    let amp_phase: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
    let rate_phase: f64 = rng.gen_range(0.0..std::f64::consts::TAU);

    let mut breath_phase = 0.0f64;
    for i in 0..params.len {
        let slow = i as f64 / params.len as f64 * std::f64::consts::TAU;
        let amp_mod = 1.0 + params.modulation * (3.0 * slow + amp_phase).sin();
        let rate_mod = 1.0 + params.modulation * (2.0 * slow + rate_phase).sin();
        breath_phase += std::f64::consts::TAU / (params.cycle_len * rate_mod);

        let in_apnea = params.apneas.iter().any(|&(s, l)| i >= s && i < s + l);
        let amplitude = if in_apnea { 0.06 } else { amp_mod };
        let v = amplitude * breath_phase.sin();
        values.push(v + gauss.sample_with(&mut rng, 0.0, params.noise_sd));
    }

    let anomalies = params
        .apneas
        .iter()
        .map(|&(s, l)| LabeledAnomaly {
            interval: Interval::new(s.min(params.len), (s + l).min(params.len)),
            label: "apnea episode".into(),
        })
        .collect();

    Dataset::new(
        TimeSeries::named("respiration (synthetic)", values),
        anomalies,
    )
}

/// `Respiration NPRS 43` analogue: 4,000 samples, one apnea.
pub fn nprs43() -> Dataset {
    let mut d = generate(RespirationParams::default());
    d.series.set_name("Respiration NPRS 43 (synthetic)");
    d
}

/// `Respiration NPRS 44` analogue: 24,125 samples, one apnea.
pub fn nprs44() -> Dataset {
    let mut d = generate(RespirationParams {
        len: 24_125,
        apneas: vec![(15_000, 180)],
        seed: 0x4E6,
        ..RespirationParams::default()
    });
    d.series.set_name("Respiration NPRS 44 (synthetic)");
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_lengths() {
        assert_eq!(nprs43().series.len(), 4000);
        assert_eq!(nprs44().series.len(), 24_125);
        assert_eq!(nprs43().anomalies.len(), 1);
    }

    #[test]
    fn apnea_has_low_amplitude() {
        let d = generate(RespirationParams {
            noise_sd: 0.0,
            ..Default::default()
        });
        let v = d.series.values();
        let iv = d.anomalies[0].interval;
        let apnea_max = v[iv.start..iv.end]
            .iter()
            .fold(0.0f64, |m, &x| m.max(x.abs()));
        let normal_max = v[100..1000].iter().fold(0.0f64, |m, &x| m.max(x.abs()));
        assert!(apnea_max < 0.1, "apnea amplitude {apnea_max}");
        assert!(normal_max > 0.8, "normal amplitude {normal_max}");
    }

    #[test]
    fn breathing_is_oscillatory() {
        let d = generate(RespirationParams {
            noise_sd: 0.0,
            apneas: vec![],
            ..Default::default()
        });
        let v = d.series.values();
        // Zero crossings: ~2 per cycle of ~33 samples → ~240 over 4000.
        let crossings = v
            .windows(2)
            .filter(|w| w[0].signum() != w[1].signum())
            .count();
        assert!((150..400).contains(&crossings), "{crossings} crossings");
    }

    #[test]
    fn apnea_clamped_to_series() {
        let d = generate(RespirationParams {
            len: 1000,
            apneas: vec![(950, 200)],
            ..Default::default()
        });
        assert_eq!(d.anomalies[0].interval, Interval::new(950, 1000));
    }

    #[test]
    fn deterministic() {
        assert_eq!(nprs44().series.values(), nprs44().series.values());
    }
}
