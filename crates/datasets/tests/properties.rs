//! Property tests over the dataset generators: for arbitrary (sane)
//! parameters, the generated data and ground truth must be well-formed.

use gv_datasets::{ecg, respiration, telemetry, trajectory, video};
use proptest::prelude::*;

fn check_dataset(d: &gv_datasets::Dataset, expect_len: usize) {
    assert_eq!(d.series.len(), expect_len);
    assert!(d.series.values().iter().all(|v| v.is_finite()));
    for a in &d.anomalies {
        assert!(!a.interval.is_empty(), "{}: empty anomaly", a.label);
        assert!(
            a.interval.end <= d.series.len(),
            "{}: out of bounds",
            a.label
        );
        assert!(!a.label.is_empty());
    }
    for w in d.anomalies.windows(2) {
        assert!(w[0].interval <= w[1].interval, "anomalies sorted");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn ecg_generator_well_formed(
        len in 1000usize..6000,
        beat_len in 100usize..400,
        seed in 0u64..1000,
        anomaly_beat in 1usize..5,
    ) {
        let d = ecg::generate(ecg::EcgParams {
            len,
            beat_len,
            anomalous_beats: vec![(anomaly_beat, ecg::EcgAnomaly::PrematureVentricular)],
            noise_sd: 0.02,
            rr_jitter: 0.03,
            seed,
        });
        check_dataset(&d, len);
        // The planted beat may fall past the series end; at most one
        // anomaly is labelled.
        prop_assert!(d.anomalies.len() <= 1);
    }

    #[test]
    fn respiration_generator_well_formed(
        len in 1000usize..8000,
        cycle in 20.0f64..60.0,
        seed in 0u64..1000,
    ) {
        let d = respiration::generate(respiration::RespirationParams {
            len,
            cycle_len: cycle,
            apneas: vec![(len / 2, 120)],
            noise_sd: 0.03,
            modulation: 0.12,
            seed,
        });
        check_dataset(&d, len);
        prop_assert_eq!(d.anomalies.len(), 1);
    }

    #[test]
    fn telemetry_generator_well_formed(
        len in 2000usize..8000,
        cycle_len in 200usize..800,
        seed in 0u64..1000,
    ) {
        let d = telemetry::generate(telemetry::TelemetryParams {
            len,
            cycle_len,
            anomalous_cycles: vec![(1, telemetry::TelemetryAnomaly::PlateauDropout)],
            noise_sd: 0.004,
            seed,
        });
        check_dataset(&d, len);
    }

    #[test]
    fn video_generator_well_formed(
        len in 2000usize..12000,
        cycle_len in 150usize..400,
        seed in 0u64..1000,
    ) {
        let d = video::generate(video::VideoParams {
            len,
            cycle_len,
            anomalous_cycles: vec![(2, video::VideoAnomaly::AbortedDraw)],
            noise_sd: 0.01,
            jitter: 0.03,
            seed,
        });
        check_dataset(&d, len);
    }

    #[test]
    fn trajectory_generator_well_formed(
        days in 2usize..10,
        seed in 0u64..500,
    ) {
        let t = trajectory::generate(trajectory::TrajectoryParams {
            days,
            detour_day: Some(1),
            gps_loss_day: Some(0),
            seed,
            ..Default::default()
        });
        prop_assert_eq!(t.points.len(), t.dataset.series.len());
        check_dataset(&t.dataset, t.points.len());
        prop_assert_eq!(t.dataset.anomalies.len(), 2);
        // Hilbert indexes are within the curve's range.
        let max = t.mapper.curve().cells() as f64;
        prop_assert!(t.dataset.series.values().iter().all(|&v| v >= 0.0 && v < max));
    }
}
