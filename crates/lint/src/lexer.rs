//! A hand-rolled Rust lexer: comments-, strings-, and attribute-aware.
//!
//! This is *not* a full Rust grammar — it tokenizes just precisely enough
//! for lexical lint rules to reason about real code without being fooled
//! by string literals, comments, raw strings, char-vs-lifetime ambiguity,
//! or float literals. Anything the rules don't need (operator precedence,
//! generics disambiguation) is deliberately out of scope; the rule layer
//! works on the token stream plus brace structure.

/// What a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`foo`, `fn`, `r#match`).
    Ident,
    /// A lifetime (`'a`, `'static`) — *not* a char literal.
    Lifetime,
    /// An integer literal (`42`, `0xFF`, `1_000u64`).
    Int,
    /// A float literal (`1.0`, `2e-3`, `1f64`).
    Float,
    /// A string literal of any flavor (`"…"`, `r#"…"#`, `b"…"`).
    Str,
    /// A char or byte literal (`'x'`, `b'\n'`).
    Char,
    /// Punctuation; multi-char operators the rules care about
    /// (`::`, `==`, `!=`, `..`, `->`, `=>`, `<=`, `>=`) are single tokens.
    Punct,
}

/// One lexed token with its byte span and 1-based source position.
#[derive(Debug, Clone, Copy)]
pub struct Token {
    /// Classification.
    pub kind: TokenKind,
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
    /// 1-based line of `start`.
    pub line: u32,
    /// 1-based column (in bytes) of `start` within its line.
    pub col: u32,
}

impl Token {
    /// The token's source text.
    pub fn text<'s>(&self, src: &'s str) -> &'s str {
        &src[self.start..self.end]
    }
}

/// A comment (line or block), kept out of the token stream but preserved
/// for directive parsing (`// gv-lint: …`).
#[derive(Debug, Clone)]
pub struct Comment {
    /// Byte offset of the `//` or `/*`.
    pub start: usize,
    /// Byte offset one past the comment's last character.
    pub end: usize,
    /// 1-based line of `start`.
    pub line: u32,
    /// 1-based column of `start`.
    pub col: u32,
}

impl Comment {
    /// The comment's source text, delimiters included.
    pub fn text<'s>(&self, src: &'s str) -> &'s str {
        &src[self.start..self.end]
    }
}

/// The result of lexing one source file.
#[derive(Debug, Default)]
pub struct LexOutput {
    /// Code tokens, in source order, comments excluded.
    pub tokens: Vec<Token>,
    /// Comments, in source order.
    pub comments: Vec<Comment>,
    /// Byte offset of the start of each line (line `i` is entry `i-1`).
    pub line_starts: Vec<usize>,
}

impl LexOutput {
    /// Maps a byte offset to a 1-based `(line, col)` pair.
    pub fn position(&self, offset: usize) -> (u32, u32) {
        let line = match self.line_starts.binary_search(&offset) {
            Ok(i) => i,
            Err(i) => i.saturating_sub(1),
        };
        let col = offset - self.line_starts[line] + 1;
        (line as u32 + 1, col as u32)
    }
}

/// Two-character operators lexed as single [`TokenKind::Punct`] tokens.
/// Order matters only for readability; all entries are length 2.
const TWO_CHAR_OPS: &[&str] = &["::", "==", "!=", "<=", ">=", "..", "->", "=>", "&&", "||"];

/// Lexes `src` into tokens and comments.
///
/// The lexer never fails: malformed input (unterminated strings, stray
/// bytes) degrades to best-effort tokens so the linter can still report
/// on the rest of the file.
pub fn lex(src: &str) -> LexOutput {
    let bytes = src.as_bytes();
    let mut out = LexOutput {
        line_starts: vec![0],
        ..LexOutput::default()
    };
    // Pre-compute line starts so token positions are O(log n) lookups.
    for (i, &b) in bytes.iter().enumerate() {
        if b == b'\n' {
            out.line_starts.push(i + 1);
        }
    }

    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => i += 1,
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                let start = i;
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                push_comment(&mut out, src, start, i);
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                let start = i;
                i += 2;
                let mut depth = 1usize;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                push_comment(&mut out, src, start, i);
            }
            b'"' => {
                let start = i;
                i = skip_string(bytes, i + 1);
                push_token(&mut out, TokenKind::Str, start, i);
            }
            b'r' | b'b' if starts_raw_or_byte_literal(bytes, i) => {
                let start = i;
                i = skip_prefixed_literal(bytes, i, &mut out);
                // skip_prefixed_literal pushes the token itself only when
                // it actually consumed a literal; if it fell back, `i`
                // still advanced past an ident.
                let _ = start;
            }
            b'\'' => {
                let start = i;
                let (kind, next) = skip_char_or_lifetime(bytes, i);
                i = next;
                push_token(&mut out, kind, start, i);
            }
            b'0'..=b'9' => {
                let start = i;
                let (kind, next) = skip_number(bytes, i);
                i = next;
                push_token(&mut out, kind, start, i);
            }
            _ if is_ident_start(b) => {
                let start = i;
                while i < bytes.len() && is_ident_continue(bytes[i]) {
                    i += 1;
                }
                push_token(&mut out, TokenKind::Ident, start, i);
            }
            _ => {
                let start = i;
                let two = src.get(i..i + 2);
                if let Some(op) = two {
                    if TWO_CHAR_OPS.contains(&op) {
                        i += 2;
                        push_token(&mut out, TokenKind::Punct, start, i);
                        continue;
                    }
                }
                // Any other byte (including multi-byte UTF-8 sequence
                // starts) becomes a one-char punct; advance by the full
                // char so we never split a code point.
                let ch_len = src[i..].chars().next().map_or(1, char::len_utf8);
                i += ch_len;
                push_token(&mut out, TokenKind::Punct, start, i);
            }
        }
    }
    out
}

fn push_token(out: &mut LexOutput, kind: TokenKind, start: usize, end: usize) {
    let (line, col) = out.position(start);
    out.tokens.push(Token {
        kind,
        start,
        end,
        line,
        col,
    });
}

fn push_comment(out: &mut LexOutput, _src: &str, start: usize, end: usize) {
    let (line, col) = out.position(start);
    out.comments.push(Comment {
        start,
        end,
        line,
        col,
    });
}

/// Length in bytes of the UTF-8 sequence starting with `b`.
fn utf8_len(b: u8) -> usize {
    match b {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Does `r…` / `b…` at `i` begin a raw string, byte string, byte char, or
/// raw identifier (anything that needs special handling vs a plain ident)?
fn starts_raw_or_byte_literal(bytes: &[u8], i: usize) -> bool {
    match bytes[i] {
        b'r' => matches!(bytes.get(i + 1), Some(b'"') | Some(b'#')),
        b'b' => matches!(bytes.get(i + 1), Some(b'"') | Some(b'\'') | Some(b'r')),
        _ => false,
    }
}

/// Consumes an `r"…"`, `r#"…"#`, `b"…"`, `b'…'`, `br#"…"#`, or `r#ident`
/// starting at `i`; pushes the appropriate token and returns the next
/// offset. Falls back to a plain identifier when the prefix turns out not
/// to introduce a literal (e.g. `r#match`).
fn skip_prefixed_literal(bytes: &[u8], i: usize, out: &mut LexOutput) -> usize {
    let start = i;
    let mut j = i + 1; // past the 'r' or 'b'
    if bytes[start] == b'b' {
        match bytes.get(j) {
            Some(b'\'') => {
                let (_, next) = skip_char_or_lifetime(bytes, j);
                push_token(out, TokenKind::Char, start, next);
                return next;
            }
            Some(b'"') => {
                let next = skip_string(bytes, j + 1);
                push_token(out, TokenKind::Str, start, next);
                return next;
            }
            Some(b'r') => j += 1, // `br…` falls through to raw handling
            _ => {}
        }
    }
    // Raw form: zero or more '#' then '"' — or a raw identifier `r#ident`.
    let hashes_start = j;
    while bytes.get(j) == Some(&b'#') {
        j += 1;
    }
    let hashes = j - hashes_start;
    if bytes.get(j) == Some(&b'"') {
        j += 1;
        // Scan for closing quote followed by the same number of hashes.
        'outer: while j < bytes.len() {
            if bytes[j] == b'"' {
                let mut k = j + 1;
                let mut seen = 0;
                while seen < hashes && bytes.get(k) == Some(&b'#') {
                    k += 1;
                    seen += 1;
                }
                if seen == hashes {
                    j = k;
                    break 'outer;
                }
            }
            j += 1;
        }
        push_token(out, TokenKind::Str, start, j);
        return j;
    }
    // `r#ident` raw identifier, or a plain ident beginning with r/b.
    let mut k = if hashes > 0 { j } else { start };
    while k < bytes.len() && is_ident_continue(bytes[k]) {
        k += 1;
    }
    let end = k.max(start + 1);
    push_token(out, TokenKind::Ident, start, end);
    end
}

/// Consumes a double-quoted string body starting just *after* the opening
/// quote; returns the offset one past the closing quote. The return is
/// clamped to the buffer: an unterminated string whose last byte is a
/// backslash must not yield a token `end` past EOF (slicing would panic).
fn skip_string(bytes: &[u8], mut i: usize) -> usize {
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => return i + 1,
            _ => i += 1,
        }
    }
    i.min(bytes.len())
}

/// Distinguishes a char literal (`'x'`, `'\n'`) from a lifetime (`'a`)
/// starting at the `'` and consumes it.
fn skip_char_or_lifetime(bytes: &[u8], i: usize) -> (TokenKind, usize) {
    let mut j = i + 1;
    if j >= bytes.len() {
        return (TokenKind::Punct, j);
    }
    if bytes[j] == b'\\' {
        // Escaped char literal: consume escape then to closing quote.
        j += 2;
        while j < bytes.len() && bytes[j] != b'\'' {
            j += 1;
        }
        return (TokenKind::Char, (j + 1).min(bytes.len()));
    }
    if is_ident_start(bytes[j]) {
        // Could be 'a' (char) or 'a (lifetime): lifetime unless a quote
        // immediately follows a single ident char.
        let mut k = j;
        while k < bytes.len() && is_ident_continue(bytes[k]) {
            k += 1;
        }
        if bytes.get(k) == Some(&b'\'') && k == j + 1 {
            return (TokenKind::Char, k + 1);
        }
        return (TokenKind::Lifetime, k);
    }
    // Non-ident char literal like '.' or '▁' (any code point).
    j += utf8_len(bytes[j]);
    if bytes.get(j) == Some(&b'\'') {
        return (TokenKind::Char, j + 1);
    }
    (TokenKind::Char, j)
}

/// Consumes a numeric literal starting at a digit; classifies int vs float.
fn skip_number(bytes: &[u8], i: usize) -> (TokenKind, usize) {
    let mut j = i;
    let mut float = false;
    if bytes[j] == b'0' && matches!(bytes.get(j + 1), Some(b'x') | Some(b'o') | Some(b'b')) {
        j += 2;
        while j < bytes.len() && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_') {
            j += 1;
        }
        return (TokenKind::Int, j);
    }
    while j < bytes.len() && (bytes[j].is_ascii_digit() || bytes[j] == b'_') {
        j += 1;
    }
    // Fractional part: `1.5`, `1.` — but not `1..2` (range) and not a
    // method call on a literal (`1.max(2)`).
    if bytes.get(j) == Some(&b'.') && bytes.get(j + 1) != Some(&b'.') {
        let after = bytes.get(j + 1).copied();
        if after.is_none_or(|b| b.is_ascii_digit()) {
            float = true;
            j += 1;
            while j < bytes.len() && (bytes[j].is_ascii_digit() || bytes[j] == b'_') {
                j += 1;
            }
        } else if !after.is_some_and(is_ident_start) {
            float = true;
            j += 1;
        }
    }
    // Exponent.
    if matches!(bytes.get(j), Some(b'e') | Some(b'E')) {
        let mut k = j + 1;
        if matches!(bytes.get(k), Some(b'+') | Some(b'-')) {
            k += 1;
        }
        if bytes.get(k).is_some_and(|b| b.is_ascii_digit()) {
            float = true;
            j = k;
            while j < bytes.len() && (bytes[j].is_ascii_digit() || bytes[j] == b'_') {
                j += 1;
            }
        }
    }
    // Type suffix: `1f64` / `2.5f32` are floats; `7u32` stays an int.
    if bytes.get(j).copied().is_some_and(is_ident_start) {
        let suffix_start = j;
        while j < bytes.len() && is_ident_continue(bytes[j]) {
            j += 1;
        }
        let suffix = &bytes[suffix_start..j];
        if suffix == b"f32" || suffix == b"f64" {
            float = true;
        }
    }
    (
        if float {
            TokenKind::Float
        } else {
            TokenKind::Int
        },
        j,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src)
            .tokens
            .iter()
            .map(|t| (t.kind, t.text(src).to_string()))
            .collect()
    }

    #[test]
    fn basic_tokens() {
        let got = kinds("fn main() { x.unwrap(); }");
        let texts: Vec<&str> = got.iter().map(|(_, t)| t.as_str()).collect();
        assert_eq!(
            texts,
            vec!["fn", "main", "(", ")", "{", "x", ".", "unwrap", "(", ")", ";", "}"]
        );
    }

    #[test]
    fn comments_are_separated() {
        let out = lex("a // trailing\n/* block\nspanning */ b");
        let tok_texts: Vec<&str> = out
            .tokens
            .iter()
            .map(|t| t.text("a // trailing\n/* block\nspanning */ b"))
            .collect();
        assert_eq!(tok_texts, vec!["a", "b"]);
        assert_eq!(out.comments.len(), 2);
        assert_eq!(out.comments[0].line, 1);
        assert_eq!(out.comments[1].line, 2);
    }

    #[test]
    fn strings_hide_their_contents() {
        let src = r#"let s = "unwrap() // not a comment"; t"#;
        let got = kinds(src);
        assert!(got
            .iter()
            .any(|(k, t)| *k == TokenKind::Str && t.contains("unwrap")));
        assert!(!got
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "unwrap"));
        let out = lex(src);
        assert!(out.comments.is_empty());
    }

    #[test]
    fn raw_strings_and_raw_idents() {
        let src = r##"let s = r#"has "quotes" inside"#; let r#match = 1;"##;
        let got = kinds(src);
        assert!(got
            .iter()
            .any(|(k, t)| *k == TokenKind::Str && t.contains("quotes")));
        assert!(got
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "r#match"));
    }

    #[test]
    fn chars_vs_lifetimes() {
        let got = kinds("let c = 'x'; fn f<'a>(v: &'a str) { let n = '\\n'; }");
        assert_eq!(got.iter().filter(|(k, _)| *k == TokenKind::Char).count(), 2);
        assert_eq!(
            got.iter()
                .filter(|(k, _)| *k == TokenKind::Lifetime)
                .count(),
            2
        );
    }

    #[test]
    fn float_classification() {
        for (src, kind) in [
            ("1.0", TokenKind::Float),
            ("1.", TokenKind::Float),
            ("2e-3", TokenKind::Float),
            ("1f64", TokenKind::Float),
            ("2.5f32", TokenKind::Float),
            ("42", TokenKind::Int),
            ("0xFF", TokenKind::Int),
            ("1_000u64", TokenKind::Int),
        ] {
            let out = lex(src);
            assert_eq!(out.tokens.len(), 1, "{src}");
            assert_eq!(out.tokens[0].kind, kind, "{src}");
        }
        // Ranges don't produce floats.
        let got = kinds("0..10");
        assert_eq!(got[0].0, TokenKind::Int);
        assert_eq!(got[1].1, "..");
        assert_eq!(got[2].0, TokenKind::Int);
    }

    #[test]
    fn two_char_operators() {
        let got = kinds("a == b != c :: d");
        let puncts: Vec<&str> = got
            .iter()
            .filter(|(k, _)| *k == TokenKind::Punct)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(puncts, vec!["==", "!=", "::"]);
    }

    #[test]
    fn positions_are_one_based() {
        let out = lex("ab\n  cd");
        assert_eq!((out.tokens[0].line, out.tokens[0].col), (1, 1));
        assert_eq!((out.tokens[1].line, out.tokens[1].col), (2, 3));
    }

    #[test]
    fn nested_block_comments() {
        let out = lex("/* outer /* inner */ still */ x");
        assert_eq!(out.comments.len(), 1);
        assert_eq!(out.tokens.len(), 1);
    }

    #[test]
    fn unterminated_string_with_trailing_backslash_stays_in_bounds() {
        // The escape consumer jumps two bytes; on `"...\` at EOF that
        // used to run the token end one past the buffer, and the first
        // `Token::text` call on it panicked.
        for src in ["\"abc\\", "let s = \"oops\\", "b\"x\\"] {
            let out = lex(src);
            for t in &out.tokens {
                assert!(t.end <= src.len(), "{src:?}: end {} > len", t.end);
                let _ = t.text(src); // must not panic
            }
            assert!(out
                .tokens
                .iter()
                .any(|t| t.kind == TokenKind::Str && t.end == src.len()));
        }
    }

    #[test]
    fn lifetime_vs_char_edge_cases() {
        // `'_` is the anonymous lifetime, not an unterminated char.
        let got = kinds("fn f(x: &'_ str) {}");
        assert!(got
            .iter()
            .any(|(k, t)| *k == TokenKind::Lifetime && t == "'_"));
        // A char literal right after a lifetime-heavy signature.
        let got = kinds("fn g<'long>(c: char) { let q = 'q'; let l: &'long str; }");
        assert_eq!(got.iter().filter(|(k, _)| *k == TokenKind::Char).count(), 1);
        assert_eq!(
            got.iter()
                .filter(|(k, _)| *k == TokenKind::Lifetime)
                .count(),
            2
        );
        // A lone quote at EOF degrades without panicking.
        let out = lex("'");
        assert_eq!(out.tokens.len(), 1);
        assert!(out.tokens[0].end <= 1);
    }

    #[test]
    fn raw_strings_with_more_hashes_and_fake_closers() {
        // The body contains `"#` — only `"##` closes this literal.
        let src = r###"let s = r##"fake "# closer stays inside"##; after"###;
        let got = kinds(src);
        let s = got
            .iter()
            .find(|(k, _)| *k == TokenKind::Str)
            .expect("raw string token");
        assert!(s.1.contains("fake \"# closer"));
        assert!(got
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "after"));
        // Unterminated raw string consumes to EOF but stays in bounds.
        let src = "r#\"never closed";
        let out = lex(src);
        assert_eq!(out.tokens.len(), 1);
        assert_eq!(out.tokens[0].end, src.len());
    }

    #[test]
    fn byte_strings_hide_comment_and_quote_bytes() {
        let src = r#"let a = b"// not a comment \" still string"; done"#;
        let out = lex(src);
        assert!(out.comments.is_empty());
        let got = kinds(src);
        assert!(got
            .iter()
            .any(|(k, t)| *k == TokenKind::Str && t.contains("not a comment")));
        assert!(got
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "done"));
        // `br#"…"#` raw byte strings take the raw path.
        let src = r##"let raw = br#"bytes "quoted""#;"##;
        let got = kinds(src);
        assert!(got
            .iter()
            .any(|(k, t)| *k == TokenKind::Str && t.starts_with("br#")));
    }

    #[test]
    fn byte_literals() {
        let got = kinds(r#"let a = b"bytes"; let c = b'\n';"#);
        assert!(got
            .iter()
            .any(|(k, t)| *k == TokenKind::Str && t.starts_with("b\"")));
        assert!(got
            .iter()
            .any(|(k, t)| *k == TokenKind::Char && t.starts_with("b'")));
    }
}
