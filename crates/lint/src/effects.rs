//! The std effect table: what an *unresolved* (extern) call can do.
//!
//! The call-graph builder (pass 1) resolves calls to workspace functions
//! where it can; everything else — `Vec::push`, `.unwrap()`, `format!`,
//! `Instant::now` — is classified against this small table so the
//! interprocedural rules (pass 2) can reason about effects without a type
//! system. The table is deliberately conservative *and* deliberately
//! short: it names the std surface this workspace actually uses, and a
//! miss means "no known effect", never an error.

/// The effect classes the interprocedural rules track.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Effects {
    /// May allocate (`Vec::push` growth, `Box::new`, `format!`, …).
    pub alloc: bool,
    /// May panic via an explicit std panic path (`unwrap`, `expect`,
    /// `panic!`-family macros).
    pub panic: bool,
    /// May panic via `[]`-indexing / slicing out of bounds. Tracked
    /// separately from [`Effects::panic`] so the panic-reachability rule
    /// can report the two classes at different granularities.
    pub index_panic: bool,
    /// Produces a nondeterministic value (wall clock, thread id, ambient
    /// entropy, seed-randomized iteration order).
    pub nondet: bool,
}

impl Effects {
    /// No known effect.
    pub const NONE: Effects = Effects {
        alloc: false,
        panic: false,
        index_panic: false,
        nondet: false,
    };

    /// `true` when any effect class is set.
    pub fn any(self) -> bool {
        self.alloc || self.panic || self.index_panic || self.nondet
    }

    /// The union of two effect sets.
    pub fn union(self, other: Effects) -> Effects {
        Effects {
            alloc: self.alloc || other.alloc,
            panic: self.panic || other.panic,
            index_panic: self.index_panic || other.index_panic,
            nondet: self.nondet || other.nondet,
        }
    }
}

/// Method names (`.name(…)`) that allocate when the receiver is a std
/// collection. `push` is here because of the PR 8 incident: a per-push
/// `Vec` growth hid inside the streaming hot loop until profiling found
/// it — exactly the class of cost this table exists to surface.
pub const ALLOC_METHODS: &[&str] = &[
    "clone",
    "to_vec",
    "collect",
    "to_string",
    "to_owned",
    "push",
    "push_str",
    "insert",
    "extend",
    "append",
    "reserve",
    "with_capacity",
];

/// Method names that can panic on `None`/`Err`.
pub const PANIC_METHODS: &[&str] = &["unwrap", "expect"];

/// `Head::name` path calls that allocate. Empty constructors (`Vec::new`,
/// `String::new`, map/set `new`) are deliberately absent: std guarantees
/// they do not allocate until first insert.
pub const ALLOC_PATHS: &[(&str, &str)] = &[
    ("Vec", "with_capacity"),
    ("Vec", "from"),
    ("Box", "new"),
    ("String", "from"),
    ("String", "with_capacity"),
];

/// `Head::name` path calls that produce a nondeterministic value.
pub const NONDET_PATHS: &[(&str, &str)] = &[
    ("Instant", "now"),
    ("SystemTime", "now"),
    ("RandomState", "new"),
    ("thread", "current"),
];

/// Bare or path-tail calls that produce nondeterminism (ambient RNG).
pub const NONDET_CALLS: &[&str] = &["thread_rng", "from_entropy"];

/// Macros that allocate.
pub const ALLOC_MACROS: &[&str] = &["vec", "format"];

/// Macros that panic (the `assert!` family is here on purpose: in
/// release library code an assert is a panic path like any other).
pub const PANIC_MACROS: &[&str] = &[
    "panic",
    "unreachable",
    "todo",
    "unimplemented",
    "assert",
    "assert_eq",
    "assert_ne",
];

/// Unordered-iteration methods: nondeterministic *only* when the
/// enclosing function also works with a hash container (the builder
/// passes that context in — the lexer cannot type receivers).
pub const UNORDERED_ITER_METHODS: &[&str] = &["iter", "keys", "values", "drain", "into_iter"];

/// Classifies an unresolved method call `.name(…)`.
///
/// `hash_context` is true when the enclosing function mentions
/// `HashMap`/`HashSet`, which arms the unordered-iteration entries.
pub fn method_effects(name: &str, hash_context: bool) -> Effects {
    let mut e = Effects::NONE;
    if ALLOC_METHODS.contains(&name) {
        e.alloc = true;
    }
    if PANIC_METHODS.contains(&name) {
        e.panic = true;
    }
    if hash_context && UNORDERED_ITER_METHODS.contains(&name) {
        e.nondet = true;
    }
    if NONDET_CALLS.contains(&name) {
        e.nondet = true;
    }
    e
}

/// Classifies an unresolved path call `Head::name(…)`.
pub fn path_effects(head: &str, name: &str) -> Effects {
    let mut e = Effects::NONE;
    if ALLOC_PATHS.contains(&(head, name)) {
        e.alloc = true;
    }
    if NONDET_PATHS.contains(&(head, name)) || NONDET_CALLS.contains(&name) {
        e.nondet = true;
    }
    e
}

/// Classifies an unresolved plain call `name(…)`.
pub fn plain_effects(name: &str) -> Effects {
    let mut e = Effects::NONE;
    if NONDET_CALLS.contains(&name) {
        e.nondet = true;
    }
    e
}

/// Classifies a macro invocation `name!`.
pub fn macro_effects(name: &str) -> Effects {
    let mut e = Effects::NONE;
    if ALLOC_MACROS.contains(&name) {
        e.alloc = true;
    }
    if PANIC_MACROS.contains(&name) {
        e.panic = true;
    }
    e
}

/// The effect of an `expr[…]` indexing site.
pub fn index_effects() -> Effects {
    Effects {
        index_panic: true,
        ..Effects::NONE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_classifies_the_issue_examples() {
        assert!(method_effects("push", false).alloc);
        assert!(path_effects("Box", "new").alloc);
        assert!(macro_effects("format").alloc);
        assert!(method_effects("unwrap", false).panic);
        assert!(macro_effects("panic").panic);
        assert!(index_effects().index_panic);
        assert!(path_effects("Instant", "now").nondet);
        assert!(method_effects("iter", true).nondet);
        assert!(!method_effects("iter", false).nondet);
    }

    #[test]
    fn union_and_any() {
        let e = method_effects("unwrap", false).union(macro_effects("vec"));
        assert!(e.panic && e.alloc && e.any());
        assert!(!Effects::NONE.any());
    }
}
