//! Typed lint findings.

use std::fmt;

/// Every rule the engine knows, plus the meta rule for directive hygiene.
///
/// The string forms (used in `allow(...)` directives, the baseline file,
/// and reports) are kebab-case — see [`RuleId::as_str`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RuleId {
    /// No `unwrap()` / `expect()` / `panic!` in non-test library code.
    NoUnwrapInLib,
    /// `Instant` / `SystemTime` only in the obs crate and bench binaries.
    NoWallClockOutsideObs,
    /// No allocation inside `gv-lint: hot` regions.
    NoAllocInHotPath,
    /// No `==` / `!=` against float operands in non-test library code.
    NoFloatEq,
    /// No `HashMap`/`HashSet`/ambient RNG in result-producing crates.
    NoNondeterminism,
    /// Detailed-only recorder emits must sit behind the `detailed()` gate.
    RecorderGate,
    /// JSONL writers must reference `SCHEMA_VERSION`, never a literal.
    JsonlSchemaConst,
    /// Every crate root carries `#![forbid(unsafe_code)]`.
    ForbidUnsafe,
    /// Meta: malformed/unused `gv-lint:` directives and stale baselines.
    LintDirective,
}

/// All checkable rules, in report order (excludes the meta rule — it is
/// emitted by the engine itself, not run over files).
pub const ALL_RULES: &[RuleId] = &[
    RuleId::NoUnwrapInLib,
    RuleId::NoWallClockOutsideObs,
    RuleId::NoAllocInHotPath,
    RuleId::NoFloatEq,
    RuleId::NoNondeterminism,
    RuleId::RecorderGate,
    RuleId::JsonlSchemaConst,
    RuleId::ForbidUnsafe,
];

impl RuleId {
    /// The kebab-case rule id used in directives, baselines, and reports.
    pub fn as_str(self) -> &'static str {
        match self {
            RuleId::NoUnwrapInLib => "no-unwrap-in-lib",
            RuleId::NoWallClockOutsideObs => "no-wall-clock-outside-obs",
            RuleId::NoAllocInHotPath => "no-alloc-in-hot-path",
            RuleId::NoFloatEq => "no-float-eq",
            RuleId::NoNondeterminism => "no-nondeterminism",
            RuleId::RecorderGate => "recorder-gate",
            RuleId::JsonlSchemaConst => "jsonl-schema-const",
            RuleId::ForbidUnsafe => "forbid-unsafe",
            RuleId::LintDirective => "lint-directive",
        }
    }

    /// Parses a kebab-case rule id.
    pub fn parse(s: &str) -> Option<RuleId> {
        ALL_RULES
            .iter()
            .copied()
            .chain(std::iter::once(RuleId::LintDirective))
            .find(|r| r.as_str() == s)
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One finding: a rule violated at a source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintViolation {
    /// Which rule fired.
    pub rule: RuleId,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column (bytes).
    pub col: u32,
    /// Human-readable explanation of the finding.
    pub message: String,
}

impl fmt::Display for LintViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: [{}] {}",
            self.file, self.line, self.col, self.rule, self.message
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_round_trip() {
        for &r in ALL_RULES {
            assert_eq!(RuleId::parse(r.as_str()), Some(r));
        }
        assert_eq!(RuleId::parse("lint-directive"), Some(RuleId::LintDirective));
        assert_eq!(RuleId::parse("nope"), None);
    }

    #[test]
    fn display_includes_span_and_rule() {
        let v = LintViolation {
            rule: RuleId::NoUnwrapInLib,
            file: "crates/core/src/rra.rs".into(),
            line: 7,
            col: 3,
            message: "call to unwrap()".into(),
        };
        assert_eq!(
            v.to_string(),
            "crates/core/src/rra.rs:7:3: [no-unwrap-in-lib] call to unwrap()"
        );
    }
}
