//! Typed lint findings.

use std::fmt;

/// Every rule the engine knows, plus the meta rule for directive hygiene.
///
/// The string forms (used in `allow(...)` directives, the baseline file,
/// and reports) are kebab-case — see [`RuleId::as_str`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RuleId {
    /// No `unwrap()` / `expect()` / `panic!` in non-test library code.
    NoUnwrapInLib,
    /// `Instant` / `SystemTime` only in the obs crate and bench binaries.
    NoWallClockOutsideObs,
    /// No allocation inside `gv-lint: hot` regions.
    NoAllocInHotPath,
    /// No `==` / `!=` against float operands in non-test library code.
    NoFloatEq,
    /// No `HashMap`/`HashSet`/ambient RNG in result-producing crates.
    NoNondeterminism,
    /// Detailed-only recorder emits must sit behind the `detailed()` gate.
    RecorderGate,
    /// JSONL writers must reference `SCHEMA_VERSION`, never a literal.
    JsonlSchemaConst,
    /// Every crate root carries `#![forbid(unsafe_code)]`.
    ForbidUnsafe,
    /// Interprocedural: a detector/CLI-reachable `pub` library fn can
    /// transitively panic.
    PanicReachability,
    /// Interprocedural: a call made inside a `gv-lint: hot` region can
    /// transitively allocate.
    AllocReachability,
    /// Interprocedural: a nondeterministic value flows into a function on
    /// a result-producing path.
    DeterminismTaint,
    /// Meta: malformed/unused `gv-lint:` directives and stale baselines.
    LintDirective,
}

/// All checkable rules, in report order (excludes the meta rule — it is
/// emitted by the engine itself, not run over files).
pub const ALL_RULES: &[RuleId] = &[
    RuleId::NoUnwrapInLib,
    RuleId::NoWallClockOutsideObs,
    RuleId::NoAllocInHotPath,
    RuleId::NoFloatEq,
    RuleId::NoNondeterminism,
    RuleId::RecorderGate,
    RuleId::JsonlSchemaConst,
    RuleId::ForbidUnsafe,
    RuleId::PanicReachability,
    RuleId::AllocReachability,
    RuleId::DeterminismTaint,
];

impl RuleId {
    /// The kebab-case rule id used in directives, baselines, and reports.
    pub fn as_str(self) -> &'static str {
        match self {
            RuleId::NoUnwrapInLib => "no-unwrap-in-lib",
            RuleId::NoWallClockOutsideObs => "no-wall-clock-outside-obs",
            RuleId::NoAllocInHotPath => "no-alloc-in-hot-path",
            RuleId::NoFloatEq => "no-float-eq",
            RuleId::NoNondeterminism => "no-nondeterminism",
            RuleId::RecorderGate => "recorder-gate",
            RuleId::JsonlSchemaConst => "jsonl-schema-const",
            RuleId::ForbidUnsafe => "forbid-unsafe",
            RuleId::PanicReachability => "panic-reachability",
            RuleId::AllocReachability => "alloc-reachability",
            RuleId::DeterminismTaint => "determinism-taint",
            RuleId::LintDirective => "lint-directive",
        }
    }

    /// One-line rule summary (SARIF `shortDescription`, docs).
    pub fn summary(self) -> &'static str {
        match self {
            RuleId::NoUnwrapInLib => "No unwrap()/expect()/panic! in non-test library code",
            RuleId::NoWallClockOutsideObs => {
                "Instant/SystemTime only in the obs crate and bench binaries"
            }
            RuleId::NoAllocInHotPath => "No allocation inside gv-lint: hot regions",
            RuleId::NoFloatEq => "No ==/!= against float operands in library code",
            RuleId::NoNondeterminism => "No HashMap/HashSet/ambient RNG in result-producing crates",
            RuleId::RecorderGate => {
                "Detailed-only recorder emits must sit behind the detailed() gate"
            }
            RuleId::JsonlSchemaConst => {
                "JSONL writers must reference SCHEMA_VERSION, never a literal"
            }
            RuleId::ForbidUnsafe => "Every crate root carries #![forbid(unsafe_code)]",
            RuleId::PanicReachability => {
                "No transitive panic path from pub library fns on detector/CLI paths"
            }
            RuleId::AllocReachability => {
                "No transitive allocation behind calls made in hot regions"
            }
            RuleId::DeterminismTaint => {
                "No nondeterministic value flow into result-producing paths"
            }
            RuleId::LintDirective => {
                "gv-lint directives and baseline entries must be well-formed and live"
            }
        }
    }

    /// Parses a kebab-case rule id.
    pub fn parse(s: &str) -> Option<RuleId> {
        ALL_RULES
            .iter()
            .copied()
            .chain(std::iter::once(RuleId::LintDirective))
            .find(|r| r.as_str() == s)
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One hop of an interprocedural call chain attached to a finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainLink {
    /// Workspace-relative file path of the call site.
    pub file: String,
    /// 1-based line of the call site.
    pub line: u32,
    /// What happens at this hop (`mid calls leaf`, `leaf calls unwrap`).
    pub note: String,
}

/// One finding: a rule violated at a source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintViolation {
    /// Which rule fired.
    pub rule: RuleId,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column (bytes).
    pub col: u32,
    /// Human-readable explanation of the finding.
    pub message: String,
    /// Interprocedural call chain (entry → … → source); empty for the
    /// per-file lexical rules, so their rendering is unchanged.
    pub chain: Vec<ChainLink>,
}

impl fmt::Display for LintViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: [{}] {}",
            self.file, self.line, self.col, self.rule, self.message
        )?;
        for link in &self.chain {
            write!(f, "\n    via {}:{}: {}", link.file, link.line, link.note)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_round_trip() {
        for &r in ALL_RULES {
            assert_eq!(RuleId::parse(r.as_str()), Some(r));
        }
        assert_eq!(RuleId::parse("lint-directive"), Some(RuleId::LintDirective));
        assert_eq!(RuleId::parse("nope"), None);
    }

    #[test]
    fn display_includes_span_and_rule() {
        let v = LintViolation {
            rule: RuleId::NoUnwrapInLib,
            file: "crates/core/src/rra.rs".into(),
            line: 7,
            col: 3,
            message: "call to unwrap()".into(),
            chain: Vec::new(),
        };
        assert_eq!(
            v.to_string(),
            "crates/core/src/rra.rs:7:3: [no-unwrap-in-lib] call to unwrap()"
        );
    }
}
