//! The CI lint gate: lints the workspace, prints the report with its
//! per-rule tally, and exits non-zero on any violation.
//!
//! ```text
//! gv_lint [--root PATH]
//! ```
//!
//! With no `--root`, walks upward from the current directory to the first
//! `Cargo.toml` declaring `[workspace]` — so it runs identically from the
//! repo root, a crate directory, or a CI checkout.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let root = match parse_root(&args) {
        Ok(r) => r,
        Err(msg) => {
            eprintln!("gv_lint: {msg}");
            return ExitCode::from(2);
        }
    };
    match gv_lint::run(&root) {
        Ok(report) => {
            print!("{}", gv_lint::report::render(&report));
            if report.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("gv_lint: {e}");
            ExitCode::from(2)
        }
    }
}

fn parse_root(args: &[String]) -> Result<PathBuf, String> {
    match args {
        [] => {
            let cwd = std::env::current_dir().map_err(|e| e.to_string())?;
            gv_lint::find_workspace_root(&cwd)
                .ok_or_else(|| "no workspace root above current directory".to_string())
        }
        [flag, path] if flag == "--root" => Ok(PathBuf::from(path)),
        _ => Err("usage: gv_lint [--root PATH]".to_string()),
    }
}
