//! The CI lint gate: lints the workspace, prints the report with its
//! per-rule tally (or as SARIF 2.1.0 for code-scanning upload), and
//! exits non-zero on any violation.
//!
//! ```text
//! gv_lint [--root PATH] [--format text|sarif]
//! ```
//!
//! With no `--root`, walks upward from the current directory to the first
//! `Cargo.toml` declaring `[workspace]` — so it runs identically from the
//! repo root, a crate directory, or a CI checkout.

use std::path::PathBuf;
use std::process::ExitCode;

/// Parsed command line.
struct Cli {
    root: Option<PathBuf>,
    sarif: bool,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse(&args) {
        Ok(c) => c,
        Err(msg) => {
            eprintln!("gv_lint: {msg}");
            return ExitCode::from(2);
        }
    };
    let root = match cli.root {
        Some(r) => r,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(d) => d,
                Err(e) => {
                    eprintln!("gv_lint: {e}");
                    return ExitCode::from(2);
                }
            };
            match gv_lint::find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!("gv_lint: no workspace root above current directory");
                    return ExitCode::from(2);
                }
            }
        }
    };
    match gv_lint::run(&root) {
        Ok(report) => {
            if cli.sarif {
                print!("{}", gv_lint::sarif::render(&report));
            } else {
                print!("{}", gv_lint::report::render(&report));
            }
            if report.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("gv_lint: {e}");
            ExitCode::from(2)
        }
    }
}

fn parse(args: &[String]) -> Result<Cli, String> {
    let mut cli = Cli {
        root: None,
        sarif: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                let path = it.next().ok_or("--root needs a value")?;
                cli.root = Some(PathBuf::from(path));
            }
            "--format" => match it.next().map(String::as_str) {
                Some("text") => cli.sarif = false,
                Some("sarif") => cli.sarif = true,
                Some(other) => return Err(format!("unknown --format {other:?} (text|sarif)")),
                None => return Err("--format needs a value".to_string()),
            },
            _ => return Err("usage: gv_lint [--root PATH] [--format text|sarif]".to_string()),
        }
    }
    Ok(cli)
}
