//! Pass 1 of the workspace analyzer, part two: the name-resolved
//! intra-workspace call graph.
//!
//! Every function body (from [`crate::items`]) is scanned for call sites:
//! plain calls, `Head::name` path calls, `.name(…)` method calls, macro
//! invocations, and `[…]` indexing. Calls are resolved to workspace
//! functions by name — method calls by suffix match against every method
//! of that name (ambiguity recorded, which is also how dynamic trait
//! dispatch is modeled: a `.detect(…)` site links every `Detector` impl).
//! Unresolved calls are classified against the std effect table
//! ([`crate::effects`]). The interprocedural rules then run reachability
//! and effect closures over this graph.

use crate::effects::{self, Effects};
use crate::items::{collect_fns, FnItem, KEYWORDS};
use crate::lexer::TokenKind;
use crate::source::SourceFile;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Idents accepted as evidence that telemetry/wall-clock use is behind a
/// recorder gate (the `recorder-gate` machinery, plus the obs layer's own
/// `enabled` gate).
const GATE_IDENTS: &[&str] = &["detailed", "detail", "armed", "enabled"];

/// How a call site was written.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CallKind {
    /// `name(…)` — a plain call.
    Plain,
    /// `Head::name(…)` — a path call.
    Path,
    /// `.name(…)` — a method call (`on_self` when the receiver is
    /// literally `self`).
    Method {
        /// Receiver is the bare `self` token.
        on_self: bool,
    },
    /// `name!(…)` — a macro invocation.
    Macro,
    /// `expr[…]` — an indexing site (modeled as a call to `[]`).
    Index,
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Index of the calling function in [`WorkspaceModel::fns`].
    pub caller: usize,
    /// Index of the containing file.
    pub file: usize,
    /// Token index of the callee name (or the `[` for indexing).
    pub tok: usize,
    /// 1-based line of the site.
    pub line: u32,
    /// 1-based column of the site.
    pub col: u32,
    /// The callee name as written (`[]` for indexing).
    pub name: String,
    /// How the call was written.
    pub kind: CallKind,
    /// Resolved workspace callees (empty for externs).
    pub callees: Vec<usize>,
    /// More than one callee matched (suffix-match ambiguity or dynamic
    /// trait dispatch).
    pub ambiguous: bool,
    /// Effects from the std table when the call is (or may be) extern.
    pub externs: Effects,
    /// The call's value flows onward: `let`/`=`/`return` position or the
    /// body's tail expression.
    pub consumed: bool,
    /// A recorder-gate ident precedes the site in the enclosing body.
    pub gated: bool,
    /// The site's line is inside a `// gv-lint: hot` region.
    pub hot: bool,
    /// The site is in test-only code.
    pub test: bool,
}

/// The two-pass workspace model: analyzed files, the item model, and the
/// resolved call graph.
pub struct WorkspaceModel<'a> {
    /// Every analyzed source file, in engine (path-sorted) order.
    pub files: &'a [SourceFile],
    /// Every `fn` item, in file order then source order.
    pub fns: Vec<FnItem>,
    /// Every call site, in file order then source order.
    pub sites: Vec<CallSite>,
    /// Per-function site indices (into [`WorkspaceModel::sites`]).
    pub fn_sites: Vec<Vec<usize>>,
    /// Per-function reverse edges: `(caller, site)` pairs, sorted.
    pub callers: Vec<Vec<(usize, usize)>>,
}

impl<'a> WorkspaceModel<'a> {
    /// Builds the item model and call graph over `files`.
    pub fn build(files: &'a [SourceFile]) -> WorkspaceModel<'a> {
        let mut fns: Vec<FnItem> = Vec::new();
        for (fi, file) in files.iter().enumerate() {
            fns.extend(collect_fns(fi, file));
        }

        // Name → fn indices, and per-file ident mention sets (used to
        // filter method suffix matches down to plausible receivers).
        let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (idx, f) in fns.iter().enumerate() {
            by_name.entry(f.name.clone()).or_default().push(idx);
        }
        let file_idents: Vec<BTreeSet<&str>> = files
            .iter()
            .map(|f| {
                f.tokens()
                    .iter()
                    .filter(|t| t.kind == TokenKind::Ident)
                    .map(|t| t.text(&f.text))
                    .collect()
            })
            .collect();

        let mut model = WorkspaceModel {
            files,
            fns,
            sites: Vec::new(),
            fn_sites: Vec::new(),
            callers: Vec::new(),
        };
        model.extract_sites();
        model.resolve(&by_name, &file_idents);
        model.fn_sites = vec![Vec::new(); model.fns.len()];
        model.callers = vec![Vec::new(); model.fns.len()];
        for (sidx, s) in model.sites.iter().enumerate() {
            model.fn_sites[s.caller].push(sidx);
            for &callee in &s.callees {
                model.callers[callee].push((s.caller, sidx));
            }
        }
        model
    }

    /// The function at `idx`.
    pub fn fn_at(&self, idx: usize) -> &FnItem {
        &self.fns[idx]
    }

    /// Root entry points for reachability: every `Detector::detect` impl,
    /// `StreamingDetector::push`, and the CLI entry functions.
    pub fn roots(&self) -> Vec<usize> {
        let mut out = Vec::new();
        for (idx, f) in self.fns.iter().enumerate() {
            if f.is_test {
                continue;
            }
            let detect_impl = f.name == "detect" && f.trait_name.as_deref() == Some("Detector");
            let streaming_push =
                f.name == "push" && f.owner.as_deref() == Some("StreamingDetector");
            let cli_entry = self.crate_of(f) == "cli" && (f.name == "main" || f.name == "run");
            if detect_impl || streaming_push || cli_entry {
                out.push(idx);
            }
        }
        out
    }

    /// The crate a function lives in.
    pub fn crate_of(&self, f: &FnItem) -> &str {
        &self.files[f.file].crate_name
    }

    /// Forward reachability from `roots` over call edges whose site
    /// passes `site_ok`; returns a per-fn flag vector.
    pub fn reachable(&self, roots: &[usize], site_ok: &dyn Fn(&CallSite) -> bool) -> Vec<bool> {
        let mut seen = vec![false; self.fns.len()];
        let mut queue: VecDeque<usize> = VecDeque::new();
        for &r in roots {
            if !seen[r] {
                seen[r] = true;
                queue.push_back(r);
            }
        }
        while let Some(f) = queue.pop_front() {
            for &sidx in &self.fn_sites[f] {
                let s = &self.sites[sidx];
                if !site_ok(s) {
                    continue;
                }
                for &callee in &s.callees {
                    if !seen[callee] {
                        seen[callee] = true;
                        queue.push_back(callee);
                    }
                }
            }
        }
        seen
    }

    /// Backward effect closure: a fn is marked when `direct` marks it, or
    /// when any of its sites passing `site_ok` resolves to a marked fn.
    pub fn closure(&self, direct: &[bool], site_ok: &dyn Fn(&CallSite) -> bool) -> Vec<bool> {
        let mut marked = direct.to_vec();
        let mut queue: VecDeque<usize> = (0..self.fns.len()).filter(|&f| marked[f]).collect();
        while let Some(f) = queue.pop_front() {
            for &(caller, sidx) in &self.callers[f] {
                if marked[caller] || !site_ok(&self.sites[sidx]) {
                    continue;
                }
                marked[caller] = true;
                queue.push_back(caller);
            }
        }
        marked
    }

    /// Shortest call chain (as site indices) from any fn in `entries` to
    /// the function containing `source_site`, ending with `source_site`
    /// itself. Deterministic: BFS visits functions in index order.
    pub fn chain_to(
        &self,
        entries: &[usize],
        source_site: usize,
        site_ok: &dyn Fn(&CallSite) -> bool,
    ) -> Option<Vec<usize>> {
        let target = self.sites[source_site].caller;
        if entries.contains(&target) {
            return Some(vec![source_site]);
        }
        let mut parent: Vec<Option<usize>> = vec![None; self.fns.len()];
        let mut seen = vec![false; self.fns.len()];
        let mut queue: VecDeque<usize> = VecDeque::new();
        let mut sorted_entries: Vec<usize> = entries.to_vec();
        sorted_entries.sort_unstable();
        for &e in &sorted_entries {
            if !seen[e] {
                seen[e] = true;
                queue.push_back(e);
            }
        }
        while let Some(f) = queue.pop_front() {
            for &sidx in &self.fn_sites[f] {
                let s = &self.sites[sidx];
                if !site_ok(s) {
                    continue;
                }
                for &callee in &s.callees {
                    if seen[callee] {
                        continue;
                    }
                    seen[callee] = true;
                    parent[callee] = Some(sidx);
                    if callee == target {
                        let mut path = Vec::new();
                        let mut cur = callee;
                        while let Some(via) = parent[cur] {
                            path.push(via);
                            cur = self.sites[via].caller;
                        }
                        path.reverse();
                        path.push(source_site);
                        return Some(path);
                    }
                    queue.push_back(callee);
                }
            }
        }
        None
    }

    /// Scans every function body for call sites (resolution happens in a
    /// second phase once all sites exist).
    fn extract_sites(&mut self) {
        for file_idx in 0..self.files.len() {
            let file = &self.files[file_idx];
            let toks = file.tokens();
            // Innermost-fn attribution: later (nested) fns overwrite.
            let mut owner: Vec<Option<usize>> = vec![None; toks.len()];
            for (fidx, f) in self.fns.iter().enumerate() {
                if f.file != file_idx {
                    continue;
                }
                if let Some((open, close)) = f.body {
                    for slot in owner.iter_mut().take(close + 1).skip(open) {
                        *slot = Some(fidx);
                    }
                }
            }
            let mut gate_seen = vec![false; self.fns.len()];
            let mut t = 0;
            while t < toks.len() {
                // Skip attribute groups (`#[…]` / `#![…]`) entirely.
                if file.tok_text(t) == "#" {
                    let mut j = t + 1;
                    if j < toks.len() && file.tok_text(j) == "!" {
                        j += 1;
                    }
                    if j < toks.len() && file.tok_text(j) == "[" {
                        t = match_square(file, j) + 1;
                        continue;
                    }
                }
                let Some(caller) = owner[t] else {
                    t += 1;
                    continue;
                };
                let text = file.tok_text(t);
                if toks[t].kind == TokenKind::Ident && GATE_IDENTS.contains(&text) {
                    gate_seen[caller] = true;
                }
                if let Some((kind, name)) = self.site_at(file, t) {
                    let line = toks[t].line;
                    self.sites.push(CallSite {
                        caller,
                        file: file_idx,
                        tok: t,
                        line,
                        col: toks[t].col,
                        name,
                        kind,
                        callees: Vec::new(),
                        ambiguous: false,
                        externs: Effects::NONE,
                        consumed: is_consumed(file, t),
                        gated: gate_seen[caller],
                        hot: file.is_hot_line(line),
                        test: self.fns[caller].is_test || file.is_test_line(line),
                    });
                }
                t += 1;
            }
        }
    }

    /// Classifies the token at `t` as a call site, if it is one.
    fn site_at(&self, file: &SourceFile, t: usize) -> Option<(CallKind, String)> {
        let toks = file.tokens();
        let text = file.tok_text(t);
        if text == "[" {
            // Indexing: `expr[…]` — the `[` directly follows a value.
            let prev_ok = t > 0
                && (matches!(file.tok_text(t - 1), ")" | "]")
                    || (toks[t - 1].kind == TokenKind::Ident
                        && !KEYWORDS.contains(&file.tok_text(t - 1))));
            return prev_ok.then(|| (CallKind::Index, "[]".to_string()));
        }
        if toks[t].kind != TokenKind::Ident || KEYWORDS.contains(&text) {
            return None;
        }
        let next = file.tok_text_at(t + 1);
        let prev = if t > 0 { file.tok_text(t - 1) } else { "" };
        if prev == "." && (next == "(" || next == "::") {
            let on_self = t >= 2 && file.tok_text(t - 2) == "self";
            return Some((CallKind::Method { on_self }, text.to_string()));
        }
        if next == "!" && matches!(file.tok_text_at(t + 2), "(" | "[" | "{") {
            return Some((CallKind::Macro, text.to_string()));
        }
        if prev == "fn" {
            return None; // a declaration, not a call
        }
        if next == "(" || (next == "::" && file.tok_text_at(t + 2) == "<") {
            if prev == "::" {
                return Some((CallKind::Path, text.to_string()));
            }
            return Some((CallKind::Plain, text.to_string()));
        }
        None
    }

    /// Resolves every extracted site against the item model and the std
    /// effect table.
    fn resolve(&mut self, by_name: &BTreeMap<String, Vec<usize>>, file_idents: &[BTreeSet<&str>]) {
        let empty: Vec<usize> = Vec::new();
        let mut resolved: Vec<(Vec<usize>, bool, Effects)> = Vec::with_capacity(self.sites.len());
        for s in &self.sites {
            let caller = &self.fns[s.caller];
            let named = by_name.get(s.name.as_str()).unwrap_or(&empty);
            let (callees, externs) = match s.kind {
                CallKind::Index => (Vec::new(), effects::index_effects()),
                CallKind::Macro => (Vec::new(), effects::macro_effects(&s.name)),
                CallKind::Plain => {
                    let c = self.resolve_plain(named, caller);
                    let e = if c.is_empty() {
                        effects::plain_effects(&s.name)
                    } else {
                        Effects::NONE
                    };
                    (c, e)
                }
                CallKind::Path => {
                    let head = self.path_head(s);
                    let c = self.resolve_path(named, caller, head.as_deref());
                    let e = effects::path_effects(head.as_deref().unwrap_or(""), &s.name);
                    (c, e)
                }
                CallKind::Method { on_self } => {
                    let c = self.resolve_method(named, caller, on_self, file_idents, s.file);
                    // A suffix match is uncertain (the receiver may still
                    // be a std collection), so the extern classification
                    // stays in force unless the receiver is `self`.
                    let e = if on_self && !c.is_empty() {
                        Effects::NONE
                    } else {
                        effects::method_effects(&s.name, caller.hash_context)
                    };
                    (c, e)
                }
            };
            let ambiguous = callees.len() > 1;
            resolved.push((callees, ambiguous, externs));
        }
        for (s, (callees, ambiguous, externs)) in self.sites.iter_mut().zip(resolved) {
            s.callees = callees;
            s.ambiguous = ambiguous;
            s.externs = externs;
        }
    }

    /// The path segment before `::name` at a path call site.
    fn path_head(&self, s: &CallSite) -> Option<String> {
        let file = &self.files[s.file];
        if s.tok < 2 {
            return None;
        }
        let t = file.tokens().get(s.tok - 2)?;
        (t.kind == TokenKind::Ident).then(|| t.text(&file.text).to_string())
    }

    /// Plain-call resolution: same file, then same crate, then any free
    /// fn of that name (recorded as ambiguous when several survive).
    fn resolve_plain(&self, named: &[usize], caller: &FnItem) -> Vec<usize> {
        let free: Vec<usize> = named
            .iter()
            .copied()
            .filter(|&i| self.fns[i].owner.is_none())
            .collect();
        let same_file: Vec<usize> = free
            .iter()
            .copied()
            .filter(|&i| self.fns[i].file == caller.file)
            .collect();
        if !same_file.is_empty() {
            return same_file;
        }
        let caller_crate = &self.files[caller.file].crate_name;
        let same_crate: Vec<usize> = free
            .iter()
            .copied()
            .filter(|&i| &self.files[self.fns[i].file].crate_name == caller_crate)
            .collect();
        if !same_crate.is_empty() {
            return same_crate;
        }
        free
    }

    /// Path-call resolution: `Self::`/`Type::` match impl owners,
    /// `gv_*::`/`grammarviz::` match crates, bare module heads match the
    /// defining file's name.
    fn resolve_path(&self, named: &[usize], caller: &FnItem, head: Option<&str>) -> Vec<usize> {
        let Some(head) = head else {
            return Vec::new();
        };
        if head == "Self" {
            return named
                .iter()
                .copied()
                .filter(|&i| self.fns[i].owner.is_some() && self.fns[i].owner == caller.owner)
                .collect();
        }
        if matches!(head, "self" | "crate" | "super") {
            let caller_crate = &self.files[caller.file].crate_name;
            return named
                .iter()
                .copied()
                .filter(|&i| {
                    self.fns[i].owner.is_none()
                        && &self.files[self.fns[i].file].crate_name == caller_crate
                })
                .collect();
        }
        // `Type::assoc(…)`.
        let by_owner: Vec<usize> = named
            .iter()
            .copied()
            .filter(|&i| self.fns[i].owner.as_deref() == Some(head))
            .collect();
        if !by_owner.is_empty() {
            return by_owner;
        }
        // `gv_core::…` / `grammarviz::…` crate paths.
        let crate_name = head.strip_prefix("gv_").unwrap_or(head);
        let by_crate: Vec<usize> = named
            .iter()
            .copied()
            .filter(|&i| {
                self.fns[i].owner.is_none() && self.files[self.fns[i].file].crate_name == crate_name
            })
            .collect();
        if !by_crate.is_empty() {
            return by_crate;
        }
        // `module::helper(…)` — the module is the defining file.
        named
            .iter()
            .copied()
            .filter(|&i| {
                let rel = &self.files[self.fns[i].file].rel_path;
                self.fns[i].owner.is_none()
                    && (rel.ends_with(&format!("/{head}.rs")) || rel.contains(&format!("/{head}/")))
            })
            .collect()
    }

    /// Method-call resolution: `self.name(…)` prefers the caller's own
    /// impl; otherwise a suffix match over every method of that name,
    /// kept only when the candidate's owner type is mentioned in the
    /// calling file (a receiver the file never names cannot be one of
    /// ours).
    fn resolve_method(
        &self,
        named: &[usize],
        caller: &FnItem,
        on_self: bool,
        file_idents: &[BTreeSet<&str>],
        site_file: usize,
    ) -> Vec<usize> {
        let methods: Vec<usize> = named
            .iter()
            .copied()
            .filter(|&i| self.fns[i].owner.is_some())
            .collect();
        if on_self {
            if let Some(owner) = &caller.owner {
                let own: Vec<usize> = methods
                    .iter()
                    .copied()
                    .filter(|&i| self.fns[i].owner.as_deref() == Some(owner.as_str()))
                    .collect();
                if !own.is_empty() {
                    return own;
                }
            }
        }
        methods
            .into_iter()
            .filter(|&i| {
                self.fns[i].file == site_file
                    || self.fns[i]
                        .owner
                        .as_deref()
                        .is_some_and(|o| file_idents[site_file].contains(o))
            })
            .collect()
    }
}

/// Index of the `]` matching the `[` at `open`; saturates on unbalanced
/// input.
fn match_square(file: &SourceFile, open: usize) -> usize {
    let toks = file.tokens();
    let mut depth: i32 = 0;
    let mut j = open;
    while j < toks.len() {
        match file.tok_text(j) {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            _ => {}
        }
        j += 1;
    }
    toks.len().saturating_sub(1)
}

/// Does the call value at token `t` flow onward — `let`/`=`/`return`
/// before it in the statement, or the body's tail expression after it?
fn is_consumed(file: &SourceFile, t: usize) -> bool {
    // Backward to the statement boundary.
    let mut k = t;
    while k > 0 {
        k -= 1;
        match file.tok_text(k) {
            ";" | "{" | "}" => break,
            "let" | "=" | "return" | "=>" => return true,
            _ => {}
        }
    }
    // Forward: a call whose close paren is directly followed by `}` is a
    // tail expression.
    let toks = file.tokens();
    let mut j = t + 1;
    // Find the opening delimiter of the call's argument list (if any).
    while j < toks.len() && matches!(file.tok_text(j), "::" | "<" | ">" | "_" | ",") {
        j += 1;
    }
    if j >= toks.len() || !matches!(file.tok_text(j), "(" | "[" | "!") {
        return false;
    }
    if file.tok_text(j) == "!" {
        j += 1;
        if j >= toks.len() {
            return false;
        }
    }
    let close = match file.tok_text(j) {
        "(" => match_round(file, j),
        "[" => match_square(file, j),
        _ => return false,
    };
    matches!(file.tok_text_at(close + 1), "}" | "?")
}

/// Index of the `)` matching the `(` at `open`; saturates on unbalanced
/// input.
fn match_round(file: &SourceFile, open: usize) -> usize {
    let toks = file.tokens();
    let mut depth: i32 = 0;
    let mut j = open;
    while j < toks.len() {
        match file.tok_text(j) {
            "(" => depth += 1,
            ")" => {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            _ => {}
        }
        j += 1;
    }
    toks.len().saturating_sub(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::FileKind;

    fn model_of(files: &[SourceFile]) -> WorkspaceModel<'_> {
        WorkspaceModel::build(files)
    }

    fn lib(rel: &str, krate: &str, src: &str) -> SourceFile {
        SourceFile::analyze(rel, krate, FileKind::LibSrc, src.to_string())
    }

    fn fn_idx(m: &WorkspaceModel<'_>, q: &str) -> usize {
        m.fns
            .iter()
            .position(|f| f.qualified_name() == q)
            .unwrap_or_else(|| panic!("no fn {q}"))
    }

    fn edges_of(m: &WorkspaceModel<'_>, q: &str) -> Vec<String> {
        let f = fn_idx(m, q);
        let mut out: Vec<String> = m.fn_sites[f]
            .iter()
            .flat_map(|&s| m.sites[s].callees.iter())
            .map(|&c| m.fns[c].qualified_name())
            .collect();
        out.sort();
        out.dedup();
        out
    }

    #[test]
    fn plain_and_path_calls_resolve() {
        let files = vec![lib(
            "crates/core/src/a.rs",
            "core",
            "fn helper() {}\npub fn entry() { helper(); a::helper(); }\n",
        )];
        let m = model_of(&files);
        assert_eq!(edges_of(&m, "entry"), vec!["helper"]);
    }

    #[test]
    fn self_method_calls_prefer_own_impl() {
        let src = "struct A;\nstruct B;\nimpl A { fn go(&self) {} fn run(&self) { self.go() } }\n\
                   impl B { fn go(&self) {} }\n";
        let files = vec![lib("crates/core/src/a.rs", "core", src)];
        let m = model_of(&files);
        assert_eq!(edges_of(&m, "A::run"), vec!["A::go"]);
    }

    #[test]
    fn method_suffix_match_records_ambiguity() {
        let src = "struct A;\nstruct B;\nimpl A { fn go(&self) {} }\nimpl B { fn go(&self) {} }\n\
                   fn call(x: &A) { x.go() }\n";
        let files = vec![lib("crates/core/src/a.rs", "core", src)];
        let m = model_of(&files);
        assert_eq!(edges_of(&m, "call"), vec!["A::go", "B::go"]);
        let site = m.fn_sites[fn_idx(&m, "call")]
            .iter()
            .map(|&s| &m.sites[s])
            .find(|s| s.name == "go")
            .expect("site");
        assert!(site.ambiguous);
    }

    #[test]
    fn extern_calls_classify_against_the_effect_table() {
        let src = "pub fn f(v: &mut Vec<u32>, o: Option<u32>) -> u32 { v.push(1); o.unwrap() }\n";
        let files = vec![lib("crates/core/src/a.rs", "core", src)];
        let m = model_of(&files);
        let f = fn_idx(&m, "f");
        let effects: Vec<(&str, Effects)> = m.fn_sites[f]
            .iter()
            .map(|&s| (m.sites[s].name.as_str(), m.sites[s].externs))
            .collect();
        assert!(effects.iter().any(|(n, e)| *n == "push" && e.alloc));
        assert!(effects.iter().any(|(n, e)| *n == "unwrap" && e.panic));
    }

    #[test]
    fn indexing_is_a_panic_site() {
        let src = "pub fn f(v: &[u32]) -> u32 { v[0] }\n";
        let files = vec![lib("crates/core/src/a.rs", "core", src)];
        let m = model_of(&files);
        let f = fn_idx(&m, "f");
        assert!(m.fn_sites[f]
            .iter()
            .any(|&s| m.sites[s].kind == CallKind::Index && m.sites[s].externs.index_panic));
    }

    #[test]
    fn consumed_and_gated_flags() {
        let src = "pub fn f() -> u64 { let t = now(); t }\n\
                   pub fn g(r: &R) { if r.detailed() { drop(now()); } }\n\
                   pub fn h() { now(); }\n";
        let files = vec![lib("crates/core/src/a.rs", "core", src)];
        let m = model_of(&files);
        let site = |q: &str, n: &str| {
            m.fn_sites[fn_idx(&m, q)]
                .iter()
                .map(|&s| &m.sites[s])
                .find(|s| s.name == n)
                .unwrap_or_else(|| panic!("no site {n} in {q}"))
                .clone()
        };
        assert!(site("f", "now").consumed);
        assert!(!site("f", "now").gated);
        assert!(site("g", "now").gated);
        assert!(!site("h", "now").consumed);
    }

    #[test]
    fn reachability_and_closure() {
        let src = "pub fn leaf(o: Option<u32>) -> u32 { o.unwrap() }\n\
                   pub fn mid(o: Option<u32>) -> u32 { leaf(o) }\n\
                   pub fn top(o: Option<u32>) -> u32 { mid(o) }\n\
                   pub fn lonely() {}\n";
        let files = vec![lib("crates/core/src/a.rs", "core", src)];
        let m = model_of(&files);
        let top = fn_idx(&m, "top");
        let reach = m.reachable(&[top], &|_| true);
        assert!(reach[fn_idx(&m, "leaf")] && reach[fn_idx(&m, "mid")]);
        assert!(!reach[fn_idx(&m, "lonely")]);

        let mut direct = vec![false; m.fns.len()];
        for s in &m.sites {
            if s.externs.panic {
                direct[s.caller] = true;
            }
        }
        let closed = m.closure(&direct, &|_| true);
        assert!(closed[fn_idx(&m, "leaf")] && closed[top]);
        assert!(!closed[fn_idx(&m, "lonely")]);
    }

    #[test]
    fn chain_is_shortest_and_deterministic() {
        let src = "pub fn leaf(o: Option<u32>) -> u32 { o.unwrap() }\n\
                   pub fn mid(o: Option<u32>) -> u32 { leaf(o) }\n\
                   pub fn top(o: Option<u32>) -> u32 { mid(o) }\n";
        let files = vec![lib("crates/core/src/a.rs", "core", src)];
        let m = model_of(&files);
        let source = m
            .sites
            .iter()
            .position(|s| s.externs.panic)
            .expect("unwrap site");
        let chain = m
            .chain_to(&[fn_idx(&m, "top")], source, &|_| true)
            .expect("chain");
        let names: Vec<&str> = chain.iter().map(|&s| m.sites[s].name.as_str()).collect();
        assert_eq!(names, vec!["mid", "leaf", "unwrap"]);
    }
}
