//! The lint engine: walks the workspace, runs every rule over every
//! analyzed file, applies inline allows and the baseline, and produces a
//! [`LintReport`] with a per-rule tally.

use crate::baseline::Baseline;
use crate::callgraph::WorkspaceModel;
use crate::rules::{all_rules, workspace_rules, Rule};
use crate::source::{FileKind, SourceFile};
use crate::violation::{LintViolation, RuleId, ALL_RULES};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Directories never descended into. `fixtures` holds known-bad lint
/// corpus files; `shims` is vendored third-party API surface.
const SKIP_DIRS: &[&str] = &["target", ".git", "fixtures", "shims", ".claude"];

/// The outcome of a workspace lint run.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Surviving violations (not allowed, not baselined), sorted by
    /// file, line, then rule.
    pub violations: Vec<LintViolation>,
    /// Per-rule surviving-violation tally; every active rule has an
    /// entry, including zeroes, so regressions diff cleanly in CI logs.
    pub tally: BTreeMap<&'static str, usize>,
    /// Files analyzed.
    pub files_scanned: usize,
    /// Findings suppressed by inline `allow` directives.
    pub inline_allowed: usize,
    /// Findings suppressed by the checked-in baseline.
    pub baselined: usize,
}

impl LintReport {
    /// `true` when the workspace is clean.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Lint engine errors (I/O and configuration).
#[derive(Debug)]
pub enum EngineError {
    /// A filesystem read failed.
    Io {
        /// Path being read.
        path: PathBuf,
        /// Underlying error.
        source: std::io::Error,
    },
    /// The baseline file exists but does not parse.
    Baseline(String),
    /// `root` does not look like the workspace root.
    NotAWorkspace(PathBuf),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Io { path, source } => write!(f, "{}: {source}", path.display()),
            EngineError::Baseline(msg) => write!(f, "baseline: {msg}"),
            EngineError::NotAWorkspace(p) => write!(
                f,
                "{}: not a workspace root (no Cargo.toml with [workspace])",
                p.display()
            ),
        }
    }
}

impl std::error::Error for EngineError {}

/// Classifies a workspace-relative path into crate name and file role.
///
/// Returns `None` for files the linter does not police (non-Rust files
/// are filtered earlier; this only rejects unrecognized layouts).
pub fn classify(rel: &str) -> Option<(String, FileKind)> {
    let parts: Vec<&str> = rel.split('/').collect();
    match parts.as_slice() {
        ["src", ..] => Some(("grammarviz".into(), FileKind::LibSrc)),
        ["tests", ..] => Some(("grammarviz".into(), FileKind::TestSrc)),
        ["examples", ..] => Some(("grammarviz".into(), FileKind::Example)),
        ["crates", krate, "src", "bin", ..] => Some((
            (*krate).into(),
            if *krate == "bench" {
                FileKind::BenchSrc
            } else {
                FileKind::BinSrc
            },
        )),
        ["crates", krate, "src", ..] => Some((
            (*krate).into(),
            match *krate {
                "cli" => FileKind::BinSrc,
                "bench" => FileKind::BenchSrc,
                _ => FileKind::LibSrc,
            },
        )),
        ["crates", krate, "tests", ..] => Some(((*krate).into(), FileKind::TestSrc)),
        ["crates", krate, "benches", ..] => Some(((*krate).into(), FileKind::BenchSrc)),
        ["crates", krate, "examples", ..] => Some(((*krate).into(), FileKind::Example)),
        _ => None,
    }
}

/// Runs the full rule set over the workspace at `root`.
///
/// Reads `lint.toml` at the root when present. Violations suppressed by
/// inline allows or baseline entries are counted, not listed; unused
/// allows and stale baseline entries are themselves `lint-directive`
/// violations, so suppression can only ever be deliberate and current.
///
/// # Errors
/// I/O failures, a malformed baseline, or a `root` that is not the
/// workspace root.
pub fn run(root: &Path) -> Result<LintReport, EngineError> {
    run_full(root).map(|(report, _)| report)
}

/// Like [`run`], but also returns the parsed baseline with its per-entry
/// usage marks populated — `--prune-baseline` rewrites `lint.toml` from
/// exactly this state, so what it keeps is what a lint run still needs.
pub fn run_full(root: &Path) -> Result<(LintReport, Baseline), EngineError> {
    let manifest = root.join("Cargo.toml");
    let manifest_text = std::fs::read_to_string(&manifest).map_err(|source| EngineError::Io {
        path: manifest.clone(),
        source,
    })?;
    if !manifest_text.contains("[workspace]") {
        return Err(EngineError::NotAWorkspace(root.to_path_buf()));
    }

    let baseline_path = root.join("lint.toml");
    let baseline = if baseline_path.exists() {
        let text = std::fs::read_to_string(&baseline_path).map_err(|source| EngineError::Io {
            path: baseline_path.clone(),
            source,
        })?;
        Baseline::parse(&text).map_err(EngineError::Baseline)?
    } else {
        Baseline::default()
    };

    let mut files = Vec::new();
    for top in ["src", "tests", "examples", "crates"] {
        let dir = root.join(top);
        if dir.is_dir() {
            collect_rs_files(&dir, &mut files)?;
        }
    }
    files.sort();

    // Pass 1: load and analyze every file up front — the workspace rules
    // need all of them at once to build the call graph.
    let mut sources: Vec<SourceFile> = Vec::new();
    for path in &files {
        let rel = relative_slash_path(root, path);
        let Some((crate_name, kind)) = classify(&rel) else {
            continue;
        };
        let text = std::fs::read_to_string(path).map_err(|source| EngineError::Io {
            path: path.clone(),
            source,
        })?;
        sources.push(SourceFile::analyze(&rel, &crate_name, kind, text));
    }

    let mut report = LintReport {
        files_scanned: sources.len(),
        ..Default::default()
    };
    for rule in ALL_RULES {
        report.tally.insert(rule.as_str(), 0);
    }
    report.tally.insert(RuleId::LintDirective.as_str(), 0);

    // Per-file lexical rules, then the interprocedural pass 2.
    let rules = all_rules();
    let mut raw: Vec<LintViolation> = Vec::new();
    for file in &sources {
        for rule in &rules {
            rule.check(file, &mut raw);
        }
    }
    let model = WorkspaceModel::build(&sources);
    for rule in workspace_rules() {
        rule.check(&model, &baseline, &mut raw);
    }

    // One unified suppression pass. An inline allow suppresses a finding
    // of its rule on its target line — or, for chained (interprocedural)
    // findings, on any link of the chain. Baseline entries match the
    // primary site. Allows that suppress nothing are themselves findings.
    let file_index: BTreeMap<&str, usize> = sources
        .iter()
        .enumerate()
        .map(|(i, f)| (f.rel_path.as_str(), i))
        .collect();
    let mut allow_used: Vec<Vec<bool>> = sources
        .iter()
        .map(|f| vec![false; f.allows.len()])
        .collect();
    let find_allow = |rule: RuleId, file: &str, line: u32| -> Option<(usize, usize)> {
        let &fi = file_index.get(file)?;
        sources[fi]
            .allows
            .iter()
            .position(|a| a.rule == rule && a.target_line == line)
            .map(|ai| (fi, ai))
    };
    let mut surviving = Vec::new();
    for v in raw {
        let hit = find_allow(v.rule, &v.file, v.line).or_else(|| {
            v.chain
                .iter()
                .find_map(|link| find_allow(v.rule, &link.file, link.line))
        });
        if let Some((fi, ai)) = hit {
            allow_used[fi][ai] = true;
            report.inline_allowed += 1;
            continue;
        }
        if let Some(entry) = baseline.entries.iter().find(|e| e.matches(&v)) {
            entry.used.set(true);
            report.baselined += 1;
            continue;
        }
        surviving.push(v);
    }
    for (fi, file) in sources.iter().enumerate() {
        for (ai, a) in file.allows.iter().enumerate() {
            if !allow_used[fi][ai] {
                surviving.push(unused_allow_violation(file, a));
            }
        }
        surviving.extend(file.directive_errors.iter().cloned());
    }

    surviving.extend(baseline.stale(&relative_slash_path(root, &baseline_path)));
    surviving
        .sort_by(|a, b| (&a.file, a.line, a.col, a.rule).cmp(&(&b.file, b.line, b.col, b.rule)));
    for v in &surviving {
        *report.tally.entry(v.rule.as_str()).or_insert(0) += 1;
    }
    report.violations = surviving;
    Ok((report, baseline))
}

/// The `lint-directive` finding for an allow that suppressed nothing.
fn unused_allow_violation(file: &SourceFile, a: &crate::source::AllowDirective) -> LintViolation {
    LintViolation {
        rule: RuleId::LintDirective,
        file: file.rel_path.clone(),
        line: a.line,
        col: 1,
        message: format!(
            "unused allow({}) — nothing on line {} fires this rule; remove it",
            a.rule.as_str(),
            a.target_line
        ),
        chain: Vec::new(),
    }
}

/// Runs every rule over one analyzed file, applying its inline allows.
/// Exposed for fixture tests; `run` drives it across the workspace.
pub fn check_file(
    file: &SourceFile,
    rules: &[Box<dyn Rule>],
    baseline: &Baseline,
    report: &mut LintReport,
) -> Vec<LintViolation> {
    let mut raw = Vec::new();
    for rule in rules {
        rule.check(file, &mut raw);
    }

    // Inline allows: each directive may suppress findings of its rule on
    // its target line; a directive that suppresses nothing is itself a
    // finding (so allows can't outlive the code they excused).
    let mut used = vec![false; file.allows.len()];
    let mut surviving = Vec::new();
    for v in raw {
        let allow = file
            .allows
            .iter()
            .position(|a| a.rule == v.rule && a.target_line == v.line);
        match allow {
            Some(idx) => {
                used[idx] = true;
                report.inline_allowed += 1;
            }
            None => {
                if let Some(entry) = baseline.entries.iter().find(|e| e.matches(&v)) {
                    entry.used.set(true);
                    report.baselined += 1;
                } else {
                    surviving.push(v);
                }
            }
        }
    }
    for (idx, was_used) in used.iter().enumerate() {
        if !was_used {
            surviving.push(unused_allow_violation(file, &file.allows[idx]));
        }
    }
    surviving.extend(file.directive_errors.iter().cloned());
    surviving
}

/// Recursively collects `.rs` files, skipping [`SKIP_DIRS`], in sorted
/// order (deterministic reports on every platform).
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), EngineError> {
    let entries = std::fs::read_dir(dir).map_err(|source| EngineError::Io {
        path: dir.to_path_buf(),
        source,
    })?;
    let mut paths: Vec<PathBuf> = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|source| EngineError::Io {
            path: dir.to_path_buf(),
            source,
        })?;
        paths.push(entry.path());
    }
    paths.sort();
    for path in paths {
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name.as_str()) {
                collect_rs_files(&path, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// `path` relative to `root`, slash-separated regardless of platform.
fn relative_slash_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Walks upward from `start` to the first directory whose `Cargo.toml`
/// declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut cur = Some(start);
    while let Some(dir) = cur {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir.to_path_buf());
            }
        }
        cur = dir.parent();
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_table() {
        assert_eq!(
            classify("crates/core/src/rra.rs"),
            Some(("core".into(), FileKind::LibSrc))
        );
        assert_eq!(
            classify("crates/cli/src/main.rs"),
            Some(("cli".into(), FileKind::BinSrc))
        );
        assert_eq!(
            classify("crates/bench/src/bin/table1.rs"),
            Some(("bench".into(), FileKind::BenchSrc))
        );
        assert_eq!(
            classify("crates/check/src/bin/invariant_fuzz.rs"),
            Some(("check".into(), FileKind::BinSrc))
        );
        assert_eq!(
            classify("src/lib.rs"),
            Some(("grammarviz".into(), FileKind::LibSrc))
        );
        assert_eq!(
            classify("tests/parallel_determinism.rs"),
            Some(("grammarviz".into(), FileKind::TestSrc))
        );
        assert_eq!(
            classify("examples/quickstart.rs"),
            Some(("grammarviz".into(), FileKind::Example))
        );
        assert_eq!(
            classify("crates/sax/tests/properties.rs"),
            Some(("sax".into(), FileKind::TestSrc))
        );
        assert_eq!(classify("README.md"), None);
    }
}
