//! The checked-in baseline (`lint.toml`): file-level allowances for the
//! few legitimate sites where an inline comment is the wrong shape —
//! e.g. a rule that fires on a whole file, or a generated region.
//!
//! The format is a minimal TOML subset, hand-parsed (std-only policy):
//!
//! ```toml
//! [[allow]]
//! rule = "no-nondeterminism"
//! path = "crates/sax/src/dictionary.rs"
//! line = 25            # optional — omit to cover the whole file
//! reason = "lookup-only hash index; never iterated"
//! ```
//!
//! Every entry must carry a non-empty `reason`, and entries that no
//! longer match any finding are reported as stale — a baseline only
//! shrinks.

use crate::violation::{LintViolation, RuleId};
use std::cell::Cell;

/// One `[[allow]]` entry.
#[derive(Debug)]
pub struct BaselineEntry {
    /// Rule being allowed.
    pub rule: RuleId,
    /// Workspace-relative path the entry covers.
    pub path: String,
    /// Specific line, or `None` for the whole file.
    pub line: Option<u32>,
    /// Written justification.
    pub reason: String,
    /// Set when a finding matched this entry (stale detection).
    pub used: Cell<bool>,
}

impl BaselineEntry {
    /// Does this entry suppress `v`?
    pub fn matches(&self, v: &LintViolation) -> bool {
        self.rule == v.rule && self.path == v.file && self.line.is_none_or(|l| l == v.line)
    }
}

/// A parsed baseline file.
#[derive(Debug, Default)]
pub struct Baseline {
    /// All entries, in file order.
    pub entries: Vec<BaselineEntry>,
}

impl Baseline {
    /// Parses the `lint.toml` subset described in the module docs.
    ///
    /// # Errors
    /// Returns a message naming the offending line on malformed input.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        /// Fields of the `[[allow]]` entry currently being built.
        #[derive(Default)]
        struct Pending {
            rule: Option<RuleId>,
            path: Option<String>,
            line: Option<u32>,
            reason: Option<String>,
        }

        let mut entries: Vec<BaselineEntry> = Vec::new();
        let mut cur: Option<Pending> = None;

        fn finish(
            cur: &mut Option<Pending>,
            entries: &mut Vec<BaselineEntry>,
        ) -> Result<(), String> {
            if let Some(p) = cur.take() {
                let rule = p.rule.ok_or("baseline entry missing `rule`")?;
                let path = p.path.ok_or("baseline entry missing `path`")?;
                let line = p.line;
                let reason = p.reason.ok_or("baseline entry missing `reason`")?;
                if reason.trim().is_empty() {
                    return Err(format!("baseline entry for {path} has an empty reason"));
                }
                entries.push(BaselineEntry {
                    rule,
                    path,
                    line,
                    reason,
                    used: Cell::new(false),
                });
            }
            Ok(())
        }

        for (n, raw) in text.lines().enumerate() {
            let line_no = n + 1;
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            if line == "[[allow]]" {
                finish(&mut cur, &mut entries)?;
                cur = Some(Pending::default());
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!("lint.toml:{line_no}: expected `key = value`"));
            };
            let Some(entry) = cur.as_mut() else {
                return Err(format!(
                    "lint.toml:{line_no}: field outside an [[allow]] entry"
                ));
            };
            let key = key.trim();
            let value = value.trim();
            match key {
                "rule" => {
                    let name = unquote(value)
                        .ok_or_else(|| format!("lint.toml:{line_no}: rule must be quoted"))?;
                    entry.rule =
                        Some(RuleId::parse(name).ok_or_else(|| {
                            format!("lint.toml:{line_no}: unknown rule id {name:?}")
                        })?);
                }
                "path" => {
                    entry.path = Some(
                        unquote(value)
                            .ok_or_else(|| format!("lint.toml:{line_no}: path must be quoted"))?
                            .to_string(),
                    );
                }
                "line" => {
                    entry.line =
                        Some(value.parse().map_err(|_| {
                            format!("lint.toml:{line_no}: line must be an integer")
                        })?);
                }
                "reason" => {
                    entry.reason = Some(
                        unquote(value)
                            .ok_or_else(|| format!("lint.toml:{line_no}: reason must be quoted"))?
                            .to_string(),
                    );
                }
                other => {
                    return Err(format!("lint.toml:{line_no}: unknown field {other:?}"));
                }
            }
        }
        finish(&mut cur, &mut entries)?;
        Ok(Baseline { entries })
    }

    /// Renders the baseline back to `lint.toml` text with stale entries
    /// removed (`gv lint --prune-baseline`).
    ///
    /// The leading comment block of `original` (everything above the
    /// first entry or field) is kept verbatim; surviving entries are
    /// emitted in deterministic `(path, rule, line)` order with their
    /// reasons intact. Per-entry comments are not carried over — the
    /// durable justification belongs in the `reason` field.
    pub fn render_pruned(&self, original: &str) -> String {
        let mut out = String::new();
        for line in original.lines() {
            let t = line.trim();
            if t.is_empty() || t.starts_with('#') {
                out.push_str(line);
                out.push('\n');
            } else {
                break;
            }
        }
        while out.ends_with("\n\n") {
            out.pop();
        }
        let mut live: Vec<&BaselineEntry> = self.entries.iter().filter(|e| e.used.get()).collect();
        live.sort_by(|a, b| (&a.path, a.rule, a.line).cmp(&(&b.path, b.rule, b.line)));
        for e in live {
            if !out.is_empty() {
                out.push('\n');
            }
            out.push_str("[[allow]]\n");
            out.push_str(&format!("rule = \"{}\"\n", e.rule.as_str()));
            out.push_str(&format!("path = \"{}\"\n", e.path));
            if let Some(l) = e.line {
                out.push_str(&format!("line = {l}\n"));
            }
            out.push_str(&format!("reason = \"{}\"\n", e.reason));
        }
        out
    }

    /// Stale entries (never matched a finding) as `lint-directive`
    /// violations against the baseline file itself.
    pub fn stale(&self, baseline_path: &str) -> Vec<LintViolation> {
        self.entries
            .iter()
            .filter(|e| !e.used.get())
            .map(|e| LintViolation {
                rule: RuleId::LintDirective,
                file: baseline_path.to_string(),
                line: 0,
                col: 0,
                message: format!(
                    "stale baseline entry: {} at {}{} no longer fires — remove it",
                    e.rule.as_str(),
                    e.path,
                    e.line.map(|l| format!(":{l}")).unwrap_or_default()
                ),
                chain: Vec::new(),
            })
            .collect()
    }
}

fn unquote(v: &str) -> Option<&str> {
    v.strip_prefix('"')?.strip_suffix('"')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_entries() {
        let b = Baseline::parse(
            "# header\n[[allow]]\nrule = \"no-nondeterminism\"\npath = \"a/b.rs\"\nline = 25\nreason = \"lookup only\"\n\n[[allow]]\nrule = \"no-float-eq\"\npath = \"c.rs\"\nreason = \"sentinel\"\n",
        )
        .expect("parse");
        assert_eq!(b.entries.len(), 2);
        assert_eq!(b.entries[0].rule, RuleId::NoNondeterminism);
        assert_eq!(b.entries[0].line, Some(25));
        assert_eq!(b.entries[1].line, None);
    }

    #[test]
    fn missing_reason_rejected() {
        assert!(Baseline::parse("[[allow]]\nrule = \"no-float-eq\"\npath = \"c.rs\"\n").is_err());
    }

    #[test]
    fn unknown_rule_rejected() {
        assert!(
            Baseline::parse("[[allow]]\nrule = \"zzz\"\npath = \"c.rs\"\nreason = \"r\"\n")
                .is_err()
        );
    }

    #[test]
    fn matches_with_and_without_line() {
        let b = Baseline::parse(
            "[[allow]]\nrule = \"no-float-eq\"\npath = \"c.rs\"\nline = 3\nreason = \"r\"\n",
        )
        .expect("parse");
        let mut v = LintViolation {
            rule: RuleId::NoFloatEq,
            file: "c.rs".into(),
            line: 3,
            col: 1,
            message: String::new(),
            chain: Vec::new(),
        };
        assert!(b.entries[0].matches(&v));
        v.line = 4;
        assert!(!b.entries[0].matches(&v));
    }

    #[test]
    fn prune_round_trip_is_lossless_for_live_entries() {
        let original = "# header line one\n# header line two\n\n\
                        [[allow]]\nrule = \"no-nondeterminism\"\npath = \"z/b.rs\"\nline = 25\nreason = \"lookup only\"\n\n\
                        [[allow]]\nrule = \"no-float-eq\"\npath = \"a/c.rs\"\nreason = \"sentinel\"\n";
        let b = Baseline::parse(original).expect("parse");
        for e in &b.entries {
            e.used.set(true);
        }
        let pruned = b.render_pruned(original);
        assert!(pruned.starts_with("# header line one\n# header line two\n"));
        let reparsed = Baseline::parse(&pruned).expect("reparse");
        // Same entries, now in deterministic (path, rule, line) order.
        assert_eq!(reparsed.entries.len(), 2);
        assert_eq!(reparsed.entries[0].path, "a/c.rs");
        assert_eq!(reparsed.entries[0].rule, RuleId::NoFloatEq);
        assert_eq!(reparsed.entries[0].reason, "sentinel");
        assert_eq!(reparsed.entries[1].path, "z/b.rs");
        assert_eq!(reparsed.entries[1].line, Some(25));
        assert_eq!(reparsed.entries[1].reason, "lookup only");
        // Idempotent: pruning again changes nothing.
        for e in &reparsed.entries {
            e.used.set(true);
        }
        assert_eq!(reparsed.render_pruned(&pruned), pruned);
    }

    #[test]
    fn prune_drops_stale_entries() {
        let original = "[[allow]]\nrule = \"no-float-eq\"\npath = \"a.rs\"\nreason = \"r\"\n\n\
                        [[allow]]\nrule = \"no-float-eq\"\npath = \"b.rs\"\nreason = \"s\"\n";
        let b = Baseline::parse(original).expect("parse");
        b.entries[1].used.set(true);
        let pruned = b.render_pruned(original);
        assert!(!pruned.contains("a.rs"));
        assert!(pruned.contains("b.rs"));
    }

    #[test]
    fn stale_reporting() {
        let b =
            Baseline::parse("[[allow]]\nrule = \"no-float-eq\"\npath = \"c.rs\"\nreason = \"r\"\n")
                .expect("parse");
        let stale = b.stale("lint.toml");
        assert_eq!(stale.len(), 1);
        assert!(stale[0].message.contains("no longer fires"));
        b.entries[0].used.set(true);
        assert!(b.stale("lint.toml").is_empty());
    }
}
