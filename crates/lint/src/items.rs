//! Pass 1 of the workspace analyzer: the item model.
//!
//! Parses one file's token stream (the existing [`crate::lexer`] output —
//! still no `syn`) into `fn` items with spans, visibility, impl/trait
//! ownership, and brace-matched bodies. The model is deliberately flat:
//! it answers "which functions exist, who owns them, where are their
//! bodies" — everything the call-graph builder needs and nothing more.

use crate::lexer::TokenKind;
use crate::source::SourceFile;

/// Item visibility, folded to the three levels the rules care about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Visibility {
    /// No `pub` at all.
    Private,
    /// `pub(crate)` / `pub(super)` / `pub(in …)`.
    Crate,
    /// Bare `pub`.
    Public,
}

/// One `fn` item: a free function, an inherent or trait-impl method, or
/// a trait declaration (with or without a default body).
#[derive(Debug, Clone)]
pub struct FnItem {
    /// The function's name.
    pub name: String,
    /// The impl self-type (for methods) or trait name (for trait-decl
    /// methods); `None` for free functions.
    pub owner: Option<String>,
    /// For `impl Trait for Type` methods, the trait being implemented;
    /// for trait-decl methods, the declaring trait.
    pub trait_name: Option<String>,
    /// Written visibility of the `fn` itself.
    pub vis: Visibility,
    /// Index of the containing file in the workspace model.
    pub file: usize,
    /// 1-based line of the `fn` keyword.
    pub decl_line: u32,
    /// Token index of the `fn` keyword.
    pub fn_tok: usize,
    /// Token-index range of the body, `{`..`}` inclusive; `None` for
    /// bodyless trait declarations.
    pub body: Option<(usize, usize)>,
    /// Declared in test-only code (or a test file).
    pub is_test: bool,
    /// The body mentions `HashMap`/`HashSet` (arms the unordered-
    /// iteration entries of the effect table).
    pub hash_context: bool,
}

impl FnItem {
    /// Is this function callable from outside its crate — bare `pub`, or
    /// a trait method (reachable through the trait's public surface)?
    pub fn effectively_public(&self) -> bool {
        self.vis == Visibility::Public || self.trait_name.is_some()
    }

    /// A display name: `Owner::name` for methods, `name` for free fns.
    pub fn qualified_name(&self) -> String {
        match &self.owner {
            Some(owner) => format!("{owner}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// What kind of block a `{` opened — tracked so a `fn` knows its owner.
#[derive(Debug, Clone)]
enum Ctx {
    /// An `impl` block: self type, plus the trait when `impl T for S`.
    Impl {
        /// The implementing type's last path segment.
        self_ty: String,
        /// The implemented trait's last path segment, if any.
        trait_name: Option<String>,
    },
    /// A `trait Name { … }` block.
    Trait(String),
    /// Anything else (modules, fn bodies, expression blocks).
    Other,
}

/// Rust keywords that can directly precede `(` without being calls, and
/// idents that must never be treated as function names.
pub(crate) const KEYWORDS: &[&str] = &[
    "as", "break", "const", "continue", "crate", "dyn", "else", "enum", "extern", "false", "fn",
    "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub", "ref",
    "return", "self", "Self", "static", "struct", "super", "trait", "true", "type", "unsafe",
    "use", "where", "while", "async", "await", "union",
];

/// Collects every `fn` item in `file` (which has workspace index
/// `file_idx`), in source order.
pub fn collect_fns(file_idx: usize, file: &SourceFile) -> Vec<FnItem> {
    let toks = file.tokens();
    let mut stack: Vec<Ctx> = Vec::new();
    let mut pending: Option<Ctx> = None;
    let mut out: Vec<FnItem> = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let text = file.tok_text(i);
        match text {
            "{" => {
                stack.push(pending.take().unwrap_or(Ctx::Other));
                i += 1;
            }
            "}" => {
                stack.pop();
                i += 1;
            }
            "impl" => {
                let (ctx, next) = parse_impl_header(file, i);
                pending = Some(ctx);
                i = next;
            }
            "trait" => {
                let name = ident_after(file, i).unwrap_or_default();
                pending = Some(Ctx::Trait(name));
                i = skip_to_block_open(file, i + 1);
            }
            "fn" if is_fn_item(file, i) => {
                let name = ident_after(file, i).unwrap_or_default();
                let (owner, trait_name) = match stack.last() {
                    Some(Ctx::Impl {
                        self_ty,
                        trait_name,
                    }) => (Some(self_ty.clone()), trait_name.clone()),
                    Some(Ctx::Trait(t)) => (Some(t.clone()), Some(t.clone())),
                    _ => (None, None),
                };
                let (body_open, after_sig) = find_body_open(file, i + 1);
                let body = body_open.map(|open| (open, match_brace(file, open)));
                let decl_line = toks[i].line;
                let hash_context = body.is_some_and(|(open, close)| {
                    (open..=close.min(toks.len().saturating_sub(1)))
                        .any(|k| matches!(file.tok_text(k), "HashMap" | "HashSet"))
                });
                out.push(FnItem {
                    name,
                    owner,
                    trait_name,
                    vis: visibility_before(file, i),
                    file: file_idx,
                    decl_line,
                    fn_tok: i,
                    body,
                    is_test: file.is_test_line(decl_line),
                    hash_context,
                });
                // Jump past the signature so `impl Trait` in argument or
                // return position never opens a phantom impl block; the
                // body `{` (if any) is consumed by the main loop with the
                // pending fn-body context.
                pending = body_open.map(|_| Ctx::Other);
                i = body_open.unwrap_or(after_sig);
            }
            _ => i += 1,
        }
    }
    out
}

/// Is the `fn` at token `i` an item (followed by a name), as opposed to
/// a function-pointer type `fn(…) -> …`?
fn is_fn_item(file: &SourceFile, i: usize) -> bool {
    file.tokens()
        .get(i + 1)
        .is_some_and(|t| t.kind == TokenKind::Ident)
}

/// The ident token directly after `i`, as text.
fn ident_after(file: &SourceFile, i: usize) -> Option<String> {
    let t = file.tokens().get(i + 1)?;
    (t.kind == TokenKind::Ident).then(|| t.text(&file.text).to_string())
}

/// Parses an `impl` header starting at token `i` (the `impl` keyword):
/// returns the context to attach to the block's `{` and the index of
/// that `{` (so the caller can jump the header).
fn parse_impl_header(file: &SourceFile, i: usize) -> (Ctx, usize) {
    let toks = file.tokens();
    let mut angle: i32 = 0;
    let mut last_ident: Option<String> = None;
    let mut trait_name: Option<String> = None;
    let mut in_where = false;
    let mut j = i + 1;
    while j < toks.len() {
        let text = file.tok_text(j);
        match text {
            "<" => angle += 1,
            ">" => angle = (angle - 1).max(0),
            "{" => {
                let self_ty = last_ident.take().unwrap_or_default();
                return (
                    Ctx::Impl {
                        self_ty,
                        trait_name,
                    },
                    j,
                );
            }
            ";" => break, // malformed / opaque — treat as no impl block
            "for" if angle == 0 && !in_where => {
                trait_name = last_ident.take();
            }
            "where" if angle == 0 => in_where = true,
            _ if angle == 0
                && !in_where
                && toks[j].kind == TokenKind::Ident
                && !KEYWORDS.contains(&text) =>
            {
                last_ident = Some(text.to_string());
            }
            _ => {}
        }
        j += 1;
    }
    (Ctx::Other, j)
}

/// Advances from `i` to the next `{` at paren depth 0 (trait headers:
/// skips supertrait bounds and where clauses).
fn skip_to_block_open(file: &SourceFile, i: usize) -> usize {
    let toks = file.tokens();
    let mut paren: i32 = 0;
    let mut j = i;
    while j < toks.len() {
        match file.tok_text(j) {
            "(" => paren += 1,
            ")" => paren = (paren - 1).max(0),
            "{" if paren == 0 => return j,
            ";" if paren == 0 => return j + 1,
            _ => {}
        }
        j += 1;
    }
    j
}

/// Finds the body `{` of a fn whose signature starts at `i` (just past
/// the `fn` keyword): returns `(Some(open), open)` for fns with bodies,
/// `(None, after_semi)` for bodyless trait declarations.
fn find_body_open(file: &SourceFile, i: usize) -> (Option<usize>, usize) {
    let toks = file.tokens();
    let mut paren: i32 = 0;
    let mut bracket: i32 = 0;
    let mut j = i;
    while j < toks.len() {
        match file.tok_text(j) {
            "(" => paren += 1,
            ")" => paren = (paren - 1).max(0),
            "[" => bracket += 1,
            "]" => bracket = (bracket - 1).max(0),
            "{" if paren == 0 && bracket == 0 => return (Some(j), j),
            ";" if paren == 0 && bracket == 0 => return (None, j + 1),
            _ => {}
        }
        j += 1;
    }
    (None, j)
}

/// Index of the `}` matching the `{` at `open` (token indices); saturates
/// to the last token on unbalanced input.
fn match_brace(file: &SourceFile, open: usize) -> usize {
    let toks = file.tokens();
    let mut depth: i32 = 0;
    let mut j = open;
    while j < toks.len() {
        match file.tok_text(j) {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            _ => {}
        }
        j += 1;
    }
    toks.len().saturating_sub(1)
}

/// Scans backward from the `fn` keyword over qualifiers (`const`,
/// `unsafe`, `async`, `extern "C"`) to the visibility, if any.
fn visibility_before(file: &SourceFile, fn_tok: usize) -> Visibility {
    let toks = file.tokens();
    let mut k = fn_tok;
    while k > 0 {
        k -= 1;
        let text = file.tok_text(k);
        match text {
            "const" | "unsafe" | "async" | "extern" => continue,
            _ if toks[k].kind == TokenKind::Str => continue, // extern "C"
            "pub" => return Visibility::Public,
            ")" => {
                // Possibly `pub(crate)` / `pub(super)` / `pub(in …)`.
                let mut m = k;
                while m > 0 && file.tok_text(m) != "(" {
                    m -= 1;
                }
                if m > 0 && file.tok_text(m - 1) == "pub" {
                    return Visibility::Crate;
                }
                return Visibility::Private;
            }
            _ => return Visibility::Private,
        }
    }
    Visibility::Private
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::FileKind;

    fn analyze(src: &str) -> SourceFile {
        SourceFile::analyze(
            "crates/core/src/x.rs",
            "core",
            FileKind::LibSrc,
            src.to_string(),
        )
    }

    fn names(items: &[FnItem]) -> Vec<String> {
        items.iter().map(FnItem::qualified_name).collect()
    }

    #[test]
    fn free_fns_and_visibility() {
        let f = analyze("pub fn a() {}\nfn b() {}\npub(crate) fn c() {}\npub const fn d() {}\n");
        let items = collect_fns(0, &f);
        assert_eq!(names(&items), vec!["a", "b", "c", "d"]);
        assert_eq!(items[0].vis, Visibility::Public);
        assert_eq!(items[1].vis, Visibility::Private);
        assert_eq!(items[2].vis, Visibility::Crate);
        assert_eq!(items[3].vis, Visibility::Public);
    }

    #[test]
    fn inherent_and_trait_impl_methods() {
        let src = "struct S;\nimpl S { pub fn m(&self) {} }\n\
                   trait T { fn t(&self); fn d(&self) { self.t() } }\n\
                   impl T for S { fn t(&self) {} }\n";
        let items = collect_fns(0, &analyze(src));
        assert_eq!(names(&items), vec!["S::m", "T::t", "T::d", "S::t"]);
        assert_eq!(items[3].trait_name.as_deref(), Some("T"));
        assert!(items[1].body.is_none(), "trait decl has no body");
        assert!(items[2].body.is_some(), "default method has a body");
        assert!(
            items[3].effectively_public(),
            "trait impls are public surface"
        );
    }

    #[test]
    fn generic_impls_resolve_the_self_type() {
        let src = "impl<R: Recorder> StreamingDetector<R> { fn push(&mut self) {} }\n\
                   impl fmt::Display for EngineError { fn fmt(&self) {} }\n";
        let items = collect_fns(0, &analyze(src));
        assert_eq!(
            names(&items),
            vec!["StreamingDetector::push", "EngineError::fmt"]
        );
        assert_eq!(items[1].trait_name.as_deref(), Some("Display"));
    }

    #[test]
    fn impl_trait_in_argument_position_is_not_a_block() {
        let src = "pub fn take(x: impl Iterator<Item = u32>) -> impl Fn() -> u32 { move || 1 }\n\
                   fn after() {}\n";
        let items = collect_fns(0, &analyze(src));
        assert_eq!(names(&items), vec!["take", "after"]);
        assert!(items[1].owner.is_none());
    }

    #[test]
    fn nested_fns_belong_to_no_impl() {
        let src = "impl S { fn outer(&self) { fn inner() {} inner() } }\n";
        let items = collect_fns(0, &analyze(src));
        assert_eq!(names(&items), vec!["S::outer", "inner"]);
        assert!(items[1].owner.is_none());
    }

    #[test]
    fn test_code_is_marked() {
        let src = "fn real() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\n";
        let items = collect_fns(0, &analyze(src));
        assert!(!items[0].is_test);
        assert!(items[1].is_test);
    }

    #[test]
    fn hash_context_is_per_body() {
        let src = "fn a() { let m: HashMap<u32, u32> = HashMap::new(); }\nfn b() {}\n";
        let items = collect_fns(0, &analyze(src));
        assert!(items[0].hash_context);
        assert!(!items[1].hash_context);
    }
}
