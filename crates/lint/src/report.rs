//! Human-readable rendering of a [`LintReport`].

use crate::engine::LintReport;
use std::fmt::Write as _;

/// Renders the report the way CI prints it: violations first (file:line:
/// col spans, clickable in most terminals), then the per-rule tally so a
/// regression is diagnosable from the log alone, then the verdict line.
pub fn render(report: &LintReport) -> String {
    let mut out = String::new();
    for v in &report.violations {
        let _ = writeln!(out, "{v}");
    }
    if !report.violations.is_empty() {
        let _ = writeln!(out);
    }
    let _ = writeln!(out, "rule tally (violations after allows):");
    for (rule, count) in &report.tally {
        let _ = writeln!(out, "  {rule:<28} {count}");
    }
    let _ = writeln!(
        out,
        "{} file(s) scanned; {} violation(s), {} inline-allowed, {} baselined",
        report.files_scanned,
        report.violations.len(),
        report.inline_allowed,
        report.baselined
    );
    let _ = writeln!(
        out,
        "gv-lint: {}",
        if report.is_clean() { "PASS" } else { "FAIL" }
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::violation::{LintViolation, RuleId};

    #[test]
    fn clean_report_passes() {
        let mut r = LintReport::default();
        r.files_scanned = 3;
        r.tally.insert(RuleId::NoFloatEq.as_str(), 0);
        let text = render(&r);
        assert!(text.contains("PASS"));
        assert!(text.contains("no-float-eq"));
        assert!(text.contains("3 file(s) scanned"));
    }

    #[test]
    fn dirty_report_fails_and_lists_spans() {
        let mut r = LintReport::default();
        r.violations.push(LintViolation {
            rule: RuleId::NoUnwrapInLib,
            file: "crates/core/src/rra.rs".into(),
            line: 12,
            col: 5,
            message: "boom".into(),
            chain: Vec::new(),
        });
        r.tally.insert(RuleId::NoUnwrapInLib.as_str(), 1);
        let text = render(&r);
        assert!(text.contains("FAIL"));
        assert!(text.contains("crates/core/src/rra.rs:12:5"));
        assert!(text.contains("no-unwrap-in-lib"));
    }
}
