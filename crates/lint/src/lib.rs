#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # gv-lint — project-specific static analysis
//!
//! A dependency-free Rust source analyzer that encodes this workspace's
//! *contracts* as machine-checked rules: the determinism guarantees of the
//! parallel RRA search (PR 3), the zero-overhead observability gates
//! (PRs 1–2), the allocation-free steady state behind the paper's
//! linear-time claim (Senin et al., EDBT 2015, §5), and the typed-error
//! discipline of the invariant work (PR 4).
//!
//! The analyzer is lexical by design: a hand-rolled, comment/string/
//! attribute-aware [`lexer`] (no `syn`, per the vendored-shims policy)
//! feeds a [`rules`] engine that walks the workspace and reports typed
//! [`LintViolation`]s with `file:line:col` spans. Suppression is always
//! written down: inline `// gv-lint: allow(rule-id) reason` directives or
//! a checked-in `lint.toml` baseline — and both rot loudly (unused allows
//! and stale baseline entries are themselves violations).
//!
//! Run it as `gv lint` (CLI subcommand) or `cargo run -p gv-lint` (the
//! `gv_lint` CI gate). The crate lints itself: `crates/lint` is walked
//! like any other library crate.
//!
//! ```
//! use gv_lint::{FileKind, SourceFile};
//!
//! let src = "fn f(v: &[i32]) -> i32 { *v.first().unwrap() }\n".to_string();
//! let file = SourceFile::analyze("crates/core/src/x.rs", "core", FileKind::LibSrc, src);
//! let mut findings = Vec::new();
//! for rule in gv_lint::rules::all_rules() {
//!     rule.check(&file, &mut findings);
//! }
//! assert_eq!(findings.len(), 1);
//! assert_eq!(findings[0].rule.as_str(), "no-unwrap-in-lib");
//! ```

pub mod baseline;
pub mod callgraph;
pub mod effects;
pub mod engine;
pub mod items;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod sarif;
pub mod source;
pub mod violation;

pub use baseline::Baseline;
pub use engine::{classify, find_workspace_root, run, run_full, EngineError, LintReport};
pub use source::{FileKind, SourceFile};
pub use violation::{ChainLink, LintViolation, RuleId, ALL_RULES};
