//! Per-file analysis: token stream plus the *regions* lint rules need —
//! `#[cfg(test)]` / `#[test]` spans, `// gv-lint: hot` regions, and
//! inline `// gv-lint: allow(rule) reason` directives.

use crate::lexer::{lex, LexOutput, Token, TokenKind};
use crate::violation::{LintViolation, RuleId};

/// How a file participates in the workspace; decides which rules apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library source (`crates/<c>/src/**`, root `src/**`).
    LibSrc,
    /// Binary source (`src/bin/**`, the CLI crate).
    BinSrc,
    /// Bench crate source (measurement binaries — may read the clock).
    BenchSrc,
    /// Integration tests (`tests/**`).
    TestSrc,
    /// Examples (`examples/**`).
    Example,
}

/// One inline allow directive: `// gv-lint: allow(rule-id) reason`.
#[derive(Debug, Clone)]
pub struct AllowDirective {
    /// The rule being allowed.
    pub rule: RuleId,
    /// The written justification (required, non-empty).
    pub reason: String,
    /// Line the directive itself sits on.
    pub line: u32,
    /// Line whose findings it suppresses (same line for trailing
    /// comments, the next code line for standalone ones).
    pub target_line: u32,
}

/// A lexed and region-analyzed source file, ready for rule checks.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path (slash-separated).
    pub rel_path: String,
    /// The crate this file belongs to (`core`, `obs`, …; `grammarviz`
    /// for the workspace-root crate).
    pub crate_name: String,
    /// Coarse role of the file.
    pub kind: FileKind,
    /// Full source text.
    pub text: String,
    /// Lexer output over `text`.
    pub lex: LexOutput,
    /// Inclusive 1-based line ranges lexically inside test-only code.
    pub test_ranges: Vec<(u32, u32)>,
    /// Inclusive 1-based line ranges between `gv-lint: hot` markers.
    pub hot_ranges: Vec<(u32, u32)>,
    /// Inline allow directives, in source order.
    pub allows: Vec<AllowDirective>,
    /// Problems with the directives themselves (bad rule id, missing
    /// reason, unclosed hot region) — reported as `lint-directive`.
    pub directive_errors: Vec<LintViolation>,
}

impl SourceFile {
    /// Lexes and analyzes `text` as the file at `rel_path`.
    pub fn analyze(rel_path: &str, crate_name: &str, kind: FileKind, text: String) -> SourceFile {
        let lex = lex(&text);
        let test_ranges = find_test_ranges(&lex.tokens, &text);
        let mut file = SourceFile {
            rel_path: rel_path.to_string(),
            crate_name: crate_name.to_string(),
            kind,
            text,
            lex,
            test_ranges,
            hot_ranges: Vec::new(),
            allows: Vec::new(),
            directive_errors: Vec::new(),
        };
        file.scan_directives();
        file
    }

    /// Is the 1-based `line` inside test-only code (or a test file)?
    pub fn is_test_line(&self, line: u32) -> bool {
        self.kind == FileKind::TestSrc
            || self
                .test_ranges
                .iter()
                .any(|&(lo, hi)| line >= lo && line <= hi)
    }

    /// Is the 1-based `line` inside a declared hot region?
    pub fn is_hot_line(&self, line: u32) -> bool {
        self.hot_ranges
            .iter()
            .any(|&(lo, hi)| line >= lo && line <= hi)
    }

    /// The token stream.
    pub fn tokens(&self) -> &[Token] {
        &self.lex.tokens
    }

    /// Source text of token `i`.
    pub fn tok_text(&self, i: usize) -> &str {
        self.lex.tokens[i].text(&self.text)
    }

    /// Source text of token `i`, or `""` when `i` is past the end — for
    /// lookahead that must not panic at EOF.
    pub fn tok_text_at(&self, i: usize) -> &str {
        self.lex
            .tokens
            .get(i)
            .map(|t| t.text(&self.text))
            .unwrap_or("")
    }

    /// Parses `gv-lint:` comment directives into hot ranges, allows, and
    /// directive errors.
    fn scan_directives(&mut self) {
        let mut open_hot: Option<u32> = None;
        // Collect first to avoid borrowing `self` across mutation.
        struct RawDirective {
            line: u32,
            col: u32,
            start: usize,
            body: String,
            trailing: bool,
        }
        let mut raw = Vec::new();
        for c in &self.lex.comments {
            let text = c.text(&self.text);
            let stripped = text
                .trim_start_matches('/')
                .trim_start_matches('*')
                .trim_start_matches('!')
                .trim();
            let Some(rest) = stripped.strip_prefix("gv-lint:") else {
                continue;
            };
            // Trailing = some token precedes the comment on its own line.
            // Tokens are ordered by start offset, so the candidate is
            // exactly the last token before the comment — binary search,
            // not a scan (directives are rechecked on every lint run).
            let before = self.lex.tokens.partition_point(|t| t.start < c.start);
            let trailing = before > 0 && self.lex.tokens[before - 1].line == c.line;
            raw.push(RawDirective {
                line: c.line,
                col: c.col,
                start: c.start,
                body: rest.trim().to_string(),
                trailing,
            });
        }
        for d in raw {
            if d.body == "hot" {
                if let Some(open) = open_hot {
                    self.directive_errors.push(self.directive_error(
                        d.line,
                        d.col,
                        format!("nested `gv-lint: hot` (previous opened on line {open})"),
                    ));
                }
                open_hot = Some(d.line);
            } else if d.body == "end-hot" {
                match open_hot.take() {
                    Some(open) => self.hot_ranges.push((open, d.line)),
                    None => self.directive_errors.push(self.directive_error(
                        d.line,
                        d.col,
                        "`gv-lint: end-hot` without an open hot region".to_string(),
                    )),
                }
            } else if let Some(args) = d.body.strip_prefix("allow(") {
                match args.split_once(')') {
                    Some((rule_name, reason)) => {
                        let reason = reason.trim();
                        match RuleId::parse(rule_name.trim()) {
                            Some(rule) if !reason.is_empty() => {
                                let target_line = if d.trailing {
                                    d.line
                                } else {
                                    self.next_code_line(d.start).unwrap_or(d.line)
                                };
                                self.allows.push(AllowDirective {
                                    rule,
                                    reason: reason.to_string(),
                                    line: d.line,
                                    target_line,
                                });
                            }
                            Some(rule) => self.directive_errors.push(self.directive_error(
                                d.line,
                                d.col,
                                format!(
                                    "allow({id}) needs a written reason after the parenthesis",
                                    id = rule.as_str()
                                ),
                            )),
                            None => self.directive_errors.push(self.directive_error(
                                d.line,
                                d.col,
                                format!(
                                    "unknown rule id {:?} in allow directive",
                                    rule_name.trim()
                                ),
                            )),
                        }
                    }
                    None => self.directive_errors.push(self.directive_error(
                        d.line,
                        d.col,
                        "malformed allow directive: expected `allow(rule-id) reason`".to_string(),
                    )),
                }
            } else {
                self.directive_errors.push(self.directive_error(
                    d.line,
                    d.col,
                    format!("unknown gv-lint directive {:?}", d.body),
                ));
            }
        }
        if let Some(open) = open_hot {
            // An unclosed region extends to EOF — still flagged so the
            // marker can't silently rot.
            let last_line = self.lex.line_starts.len() as u32;
            self.hot_ranges.push((open, last_line));
            self.directive_errors.push(self.directive_error(
                open,
                1,
                "`gv-lint: hot` region never closed with `end-hot`".to_string(),
            ));
        }
    }

    /// The line of the first token after byte offset `after`. Tokens are
    /// ordered by start offset, so this is a binary search — O(log n)
    /// per standalone directive instead of a front-to-back scan.
    fn next_code_line(&self, after: usize) -> Option<u32> {
        let idx = self.lex.tokens.partition_point(|t| t.start <= after);
        self.lex.tokens.get(idx).map(|t| t.line)
    }

    fn directive_error(&self, line: u32, col: u32, message: String) -> LintViolation {
        LintViolation {
            rule: RuleId::LintDirective,
            file: self.rel_path.clone(),
            line,
            col,
            message,
            chain: Vec::new(),
        }
    }
}

/// Finds line ranges covered by `#[cfg(test)]` / `#[test]` items.
///
/// The scan is purely lexical: an attribute whose bracket group mentions
/// both `cfg` and `test` (or is exactly `test`) marks the *next item* —
/// attributes are skipped, then either a `{ … }` block is brace-matched
/// or a `;`-terminated item is consumed.
fn find_test_ranges(tokens: &[Token], src: &str) -> Vec<(u32, u32)> {
    let mut ranges = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].kind == TokenKind::Punct && tokens[i].text(src) == "#" {
            let attr_line = tokens[i].line;
            // `#[…]` or `#![…]`.
            let mut j = i + 1;
            if j < tokens.len() && tokens[j].text(src) == "!" {
                j += 1;
            }
            if j < tokens.len() && tokens[j].text(src) == "[" {
                let close = match match_bracket(tokens, src, j, "[", "]") {
                    Some(c) => c,
                    None => break,
                };
                let idents: Vec<&str> = tokens[j + 1..close]
                    .iter()
                    .filter(|t| t.kind == TokenKind::Ident)
                    .map(|t| t.text(src))
                    .collect();
                let is_test_attr =
                    idents == ["test"] || (idents.contains(&"cfg") && idents.contains(&"test"));
                if is_test_attr {
                    if let Some(end_line) = item_end_line(tokens, src, close + 1) {
                        ranges.push((attr_line, end_line));
                    }
                }
                i = close + 1;
                continue;
            }
        }
        i += 1;
    }
    ranges
}

/// Given the token index just past a marking attribute, finds the last
/// line of the item it annotates (skipping further attributes).
fn item_end_line(tokens: &[Token], src: &str, mut i: usize) -> Option<u32> {
    // Skip any further attributes between the cfg and the item.
    while i < tokens.len() && tokens[i].text(src) == "#" {
        let mut j = i + 1;
        if j < tokens.len() && tokens[j].text(src) == "!" {
            j += 1;
        }
        if j < tokens.len() && tokens[j].text(src) == "[" {
            i = match_bracket(tokens, src, j, "[", "]")? + 1;
        } else {
            break;
        }
    }
    // Consume until the item's body `{…}` closes or a `;` ends it.
    while i < tokens.len() {
        let t = tokens[i].text(src);
        if t == ";" {
            return Some(tokens[i].line);
        }
        if t == "{" {
            let close = match_bracket(tokens, src, i, "{", "}")?;
            return Some(tokens[close].line);
        }
        i += 1;
    }
    None
}

/// Index of the bracket matching the one at `open_idx`.
fn match_bracket(
    tokens: &[Token],
    src: &str,
    open_idx: usize,
    open: &str,
    close: &str,
) -> Option<usize> {
    let mut depth = 0usize;
    for (k, t) in tokens.iter().enumerate().skip(open_idx) {
        let txt = t.text(src);
        if txt == open {
            depth += 1;
        } else if txt == close {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

/// Finds the innermost `fn` body containing token index `i`; returns the
/// token-index range `(body_open_brace, i)` for backward gate scans.
pub fn enclosing_fn_start(file: &SourceFile, i: usize) -> Option<usize> {
    // Walk backwards tracking brace balance; on each net-negative `{`
    // (an enclosing block), keep going until we see `fn` right before a
    // signature at depth 0 relative to that block.
    let mut depth: i32 = 0;
    let mut k = i;
    while k > 0 {
        k -= 1;
        match file.tok_text(k) {
            "}" => depth += 1,
            "{" => {
                if depth == 0 {
                    // An enclosing open brace: is it a fn body? Scan back
                    // for `fn` before hitting another brace or `;`.
                    let mut m = k;
                    while m > 0 {
                        m -= 1;
                        let t = file.tok_text(m);
                        if t == "fn" {
                            return Some(m);
                        }
                        if t == "{" || t == "}" || t == ";" {
                            break;
                        }
                    }
                    // Not a fn body (e.g. a struct literal or mod block);
                    // keep searching outwards.
                } else {
                    depth -= 1;
                }
            }
            _ => {}
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn analyze(src: &str) -> SourceFile {
        SourceFile::analyze(
            "crates/core/src/x.rs",
            "core",
            FileKind::LibSrc,
            src.to_string(),
        )
    }

    #[test]
    fn cfg_test_mod_is_a_test_range() {
        let f = analyze(
            "fn a() {}\n#[cfg(test)]\nmod tests {\n    fn b() { x.unwrap(); }\n}\nfn c() {}\n",
        );
        assert!(!f.is_test_line(1));
        assert!(f.is_test_line(2));
        assert!(f.is_test_line(4));
        assert!(!f.is_test_line(6));
    }

    #[test]
    fn test_attr_fn_is_a_test_range() {
        let f = analyze("#[test]\nfn t() {\n  boom();\n}\nfn real() {}\n");
        assert!(f.is_test_line(3));
        assert!(!f.is_test_line(5));
    }

    #[test]
    fn cfg_all_test_counts() {
        let f = analyze("#[cfg(all(test, feature = \"x\"))]\nmod m { fn z() {} }\nfn w() {}\n");
        assert!(f.is_test_line(2));
        assert!(!f.is_test_line(3));
    }

    #[test]
    fn hot_region_markers() {
        let f =
            analyze("fn a() {}\n// gv-lint: hot\nfn kernel() {}\n// gv-lint: end-hot\nfn b() {}\n");
        assert!(!f.is_hot_line(1));
        assert!(f.is_hot_line(3));
        assert!(!f.is_hot_line(5));
        assert!(f.directive_errors.is_empty());
    }

    #[test]
    fn unclosed_hot_region_is_flagged() {
        let f = analyze("// gv-lint: hot\nfn kernel() {}\n");
        assert_eq!(f.directive_errors.len(), 1);
        assert!(f.is_hot_line(2));
    }

    #[test]
    fn allow_directive_standalone_targets_next_line() {
        let f = analyze(
            "// gv-lint: allow(no-unwrap-in-lib) length checked above\nlet x = v.first().unwrap();\n",
        );
        assert_eq!(f.allows.len(), 1);
        assert_eq!(f.allows[0].rule, RuleId::NoUnwrapInLib);
        assert_eq!(f.allows[0].target_line, 2);
        assert!(f.directive_errors.is_empty());
    }

    #[test]
    fn allow_directive_trailing_targets_same_line() {
        let f = analyze("let x = v.first().unwrap(); // gv-lint: allow(no-unwrap-in-lib) non-empty by construction\n");
        assert_eq!(f.allows.len(), 1);
        assert_eq!(f.allows[0].target_line, 1);
    }

    #[test]
    fn allow_without_reason_is_an_error() {
        let f = analyze("// gv-lint: allow(no-unwrap-in-lib)\nlet x = 1;\n");
        assert!(f.allows.is_empty());
        assert_eq!(f.directive_errors.len(), 1);
        assert!(f.directive_errors[0].message.contains("reason"));
    }

    #[test]
    fn unknown_rule_in_allow_is_an_error() {
        let f = analyze("// gv-lint: allow(no-such-rule) whatever\nlet x = 1;\n");
        assert!(f.allows.is_empty());
        assert_eq!(f.directive_errors.len(), 1);
    }

    #[test]
    fn enclosing_fn_lookup() {
        let src = "fn outer() { let c = || { target(); }; }";
        let f = analyze(src);
        let idx = f
            .tokens()
            .iter()
            .position(|t| t.text(src) == "target")
            .expect("token");
        let fn_idx = enclosing_fn_start(&f, idx).expect("enclosing fn");
        assert_eq!(f.tok_text(fn_idx), "fn");
        assert_eq!(f.tok_text(fn_idx + 1), "outer");
    }
}
