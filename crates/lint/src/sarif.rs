//! SARIF 2.1.0 rendering of a [`LintReport`] (`gv lint --format sarif`).
//!
//! The JSON is hand-rolled: this crate stays dependency-free (even of the
//! in-tree serde shim) so the linter can never be broken by the code it
//! lints. Output is fully deterministic — object keys are emitted in a
//! fixed order, results come from the report's already-sorted violation
//! list, and no timestamps or absolute paths appear anywhere.
//!
//! Interprocedural findings carry their call chain as a SARIF `codeFlow`
//! (one `threadFlow` whose locations are the chain links, entry first),
//! so viewers render the path, not just the panic/alloc/taint source.

use crate::engine::LintReport;
use crate::violation::{LintViolation, RuleId, ALL_RULES};
use std::fmt::Write as _;

/// Renders `report` as a single-run SARIF 2.1.0 log.
pub fn render(report: &LintReport) -> String {
    let rules = sarif_rules();
    let mut out = String::new();
    out.push('{');
    field(&mut out, "$schema", |o| {
        string(o, "https://json.schemastore.org/sarif-2.1.0.json");
    });
    out.push(',');
    field(&mut out, "version", |o| string(o, "2.1.0"));
    out.push(',');
    field(&mut out, "runs", |o| {
        o.push('[');
        o.push('{');
        field(o, "tool", |o| {
            o.push('{');
            field(o, "driver", |o| {
                o.push('{');
                field(o, "name", |o| string(o, "gv-lint"));
                o.push(',');
                field(o, "informationUri", |o| {
                    string(o, "https://github.com/grammarviz/grammarviz");
                });
                o.push(',');
                field(o, "rules", |o| {
                    o.push('[');
                    for (i, rule) in rules.iter().enumerate() {
                        if i > 0 {
                            o.push(',');
                        }
                        render_rule(o, *rule);
                    }
                    o.push(']');
                });
                o.push('}');
            });
            o.push('}');
        });
        o.push(',');
        field(o, "results", |o| {
            o.push('[');
            for (i, v) in report.violations.iter().enumerate() {
                if i > 0 {
                    o.push(',');
                }
                render_result(o, v, &rules);
            }
            o.push(']');
        });
        o.push('}');
        o.push(']');
    });
    out.push('}');
    out.push('\n');
    out
}

/// Every rule the driver declares, in report order (the meta rule last).
fn sarif_rules() -> Vec<RuleId> {
    let mut rules: Vec<RuleId> = ALL_RULES.to_vec();
    rules.push(RuleId::LintDirective);
    rules
}

fn render_rule(o: &mut String, rule: RuleId) {
    o.push('{');
    field(o, "id", |o| string(o, rule.as_str()));
    o.push(',');
    field(o, "shortDescription", |o| {
        o.push('{');
        field(o, "text", |o| string(o, rule.summary()));
        o.push('}');
    });
    o.push(',');
    field(o, "defaultConfiguration", |o| {
        o.push('{');
        field(o, "level", |o| string(o, "error"));
        o.push('}');
    });
    o.push('}');
}

fn render_result(o: &mut String, v: &LintViolation, rules: &[RuleId]) {
    let rule_index = rules.iter().position(|&r| r == v.rule).unwrap_or(0);
    o.push('{');
    field(o, "ruleId", |o| string(o, v.rule.as_str()));
    o.push(',');
    field(o, "ruleIndex", |o| {
        let _ = write!(o, "{rule_index}");
    });
    o.push(',');
    field(o, "level", |o| string(o, "error"));
    o.push(',');
    field(o, "message", |o| {
        o.push('{');
        field(o, "text", |o| string(o, &v.message));
        o.push('}');
    });
    o.push(',');
    field(o, "locations", |o| {
        o.push('[');
        o.push('{');
        field(o, "physicalLocation", |o| {
            physical_location(o, &v.file, v.line, v.col);
        });
        o.push('}');
        o.push(']');
    });
    if !v.chain.is_empty() {
        o.push(',');
        field(o, "codeFlows", |o| {
            o.push('[');
            o.push('{');
            field(o, "threadFlows", |o| {
                o.push('[');
                o.push('{');
                field(o, "locations", |o| {
                    o.push('[');
                    for (i, link) in v.chain.iter().enumerate() {
                        if i > 0 {
                            o.push(',');
                        }
                        o.push('{');
                        field(o, "location", |o| {
                            o.push('{');
                            field(o, "physicalLocation", |o| {
                                physical_location(o, &link.file, link.line, 0);
                            });
                            o.push(',');
                            field(o, "message", |o| {
                                o.push('{');
                                field(o, "text", |o| string(o, &link.note));
                                o.push('}');
                            });
                            o.push('}');
                        });
                        o.push('}');
                    }
                    o.push(']');
                });
                o.push('}');
                o.push(']');
            });
            o.push('}');
            o.push(']');
        });
    }
    o.push('}');
}

/// A `physicalLocation`. Line 0 means "no real span" (stale-baseline
/// findings point at the file, not a line) — the region is omitted, as
/// SARIF regions are 1-based.
fn physical_location(o: &mut String, file: &str, line: u32, col: u32) {
    o.push('{');
    field(o, "artifactLocation", |o| {
        o.push('{');
        field(o, "uri", |o| string(o, file));
        o.push('}');
    });
    if line > 0 {
        o.push(',');
        field(o, "region", |o| {
            o.push('{');
            field(o, "startLine", |o| {
                let _ = write!(o, "{line}");
            });
            if col > 0 {
                o.push(',');
                field(o, "startColumn", |o| {
                    let _ = write!(o, "{col}");
                });
            }
            o.push('}');
        });
    }
    o.push('}');
}

/// Writes `"key":` then the value via `value`.
fn field(o: &mut String, key: &str, value: impl FnOnce(&mut String)) {
    string(o, key);
    o.push(':');
    value(o);
}

/// Writes `s` as a JSON string literal with full escaping.
fn string(o: &mut String, s: &str) {
    o.push('"');
    for c in s.chars() {
        match c {
            '"' => o.push_str("\\\""),
            '\\' => o.push_str("\\\\"),
            '\n' => o.push_str("\\n"),
            '\r' => o.push_str("\\r"),
            '\t' => o.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(o, "\\u{:04x}", c as u32);
            }
            c => o.push(c),
        }
    }
    o.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::violation::ChainLink;

    #[test]
    fn escaping_covers_quotes_backslashes_and_controls() {
        let mut o = String::new();
        string(&mut o, "a\"b\\c\nd\u{1}");
        assert_eq!(o, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn chained_violation_gets_a_code_flow() {
        let mut report = LintReport::default();
        report.violations.push(LintViolation {
            rule: RuleId::PanicReachability,
            file: "crates/core/src/a.rs".into(),
            line: 9,
            col: 5,
            message: "can panic".into(),
            chain: vec![ChainLink {
                file: "crates/core/src/a.rs".into(),
                line: 3,
                note: "`top` calls `mid()`".into(),
            }],
        });
        let sarif = render(&report);
        assert!(sarif.contains("\"codeFlows\""));
        assert!(sarif.contains("\"startLine\":9"));
        assert!(sarif.contains("`top` calls `mid()`"));
    }

    #[test]
    fn line_zero_omits_the_region() {
        let mut report = LintReport::default();
        report.violations.push(LintViolation {
            rule: RuleId::LintDirective,
            file: "lint.toml".into(),
            line: 0,
            col: 0,
            message: "stale baseline entry".into(),
            chain: Vec::new(),
        });
        let sarif = render(&report);
        assert!(!sarif.contains("\"region\""));
        assert!(sarif.contains("\"uri\":\"lint.toml\""));
    }

    #[test]
    fn rendering_is_deterministic() {
        let report = LintReport::default();
        assert_eq!(render(&report), render(&report));
    }
}
