//! `no-nondeterminism`: result-producing code keeps a fixed order.
//!
//! Ranked discords must be reproducible run-to-run and bit-identical
//! across thread counts (PR 3); the EXPERIMENTS.md numbers are regenerated
//! under a *seeded* vendored RNG (PR 1). Both properties die quietly the
//! moment a result path iterates a `HashMap`/`HashSet` (randomized seed →
//! randomized order) or draws from an ambient-entropy RNG. Result crates
//! must use `BTreeMap`/`BTreeSet`, sort before draining, or carry an
//! allow-directive stating why the container's order can never reach an
//! output (e.g. lookup-only indexes).

use super::{violation_at, Rule, RESULT_CRATES};
use crate::lexer::TokenKind;
use crate::source::{FileKind, SourceFile};
use crate::violation::{LintViolation, RuleId};

/// Idents whose presence in result-producing code needs justification.
const SUSPECT_IDENTS: &[(&str, &str)] = &[
    (
        "HashMap",
        "iteration order is seed-randomized; use BTreeMap or prove lookup-only",
    ),
    (
        "HashSet",
        "iteration order is seed-randomized; use BTreeSet or prove lookup-only",
    ),
    ("RandomState", "ambient hasher seeding is nondeterministic"),
    (
        "thread_rng",
        "ambient entropy breaks seeded reproducibility; use a seeded StdRng",
    ),
    (
        "from_entropy",
        "ambient entropy breaks seeded reproducibility; use seed_from_u64",
    ),
];

/// See module docs.
pub struct NoNondeterminism;

impl Rule for NoNondeterminism {
    fn id(&self) -> RuleId {
        RuleId::NoNondeterminism
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<LintViolation>) {
        if file.kind != FileKind::LibSrc || !RESULT_CRATES.contains(&file.crate_name.as_str()) {
            return;
        }
        for (i, t) in file.tokens().iter().enumerate() {
            if t.kind != TokenKind::Ident || file.is_test_line(t.line) {
                continue;
            }
            let text = file.tok_text(i);
            for (name, why) in SUSPECT_IDENTS {
                if text == *name {
                    out.push(violation_at(
                        file,
                        self.id(),
                        i,
                        format!("`{name}` in a result-producing crate — {why}"),
                    ));
                }
            }
        }
    }
}
