//! `no-alloc-in-hot-path`: declared hot regions stay allocation-free.
//!
//! PR 3 made the steady state allocation-free (reusable `Workspace`
//! buffers, `capacity_signature()` frozen after warmup); the paper's
//! linear-time claim (§5) depends on the distance kernel and the RRA
//! inner loop not hitting the allocator per candidate. Code between
//! `// gv-lint: hot` and `// gv-lint: end-hot` markers must not allocate:
//! no fresh `Vec`/`Box`/`String`, no `clone`/`to_vec`/`collect`.
//! (`Vec::resize` on a pre-grown buffer is the blessed pattern and is
//! deliberately not flagged.)

use super::{is_macro, is_method_call, is_path_call, violation_at, Rule};
use crate::source::SourceFile;
use crate::violation::{LintViolation, RuleId};

/// Method calls that allocate.
const ALLOC_METHODS: &[&str] = &["clone", "to_vec", "collect", "to_string", "to_owned"];
/// `Type::constructor` pairs that allocate.
const ALLOC_PATHS: &[(&str, &str)] = &[
    ("Vec", "new"),
    ("Vec", "with_capacity"),
    ("Vec", "from"),
    ("Box", "new"),
    ("String", "new"),
    ("String", "from"),
    ("String", "with_capacity"),
];
/// Macros that allocate.
const ALLOC_MACROS: &[&str] = &["vec", "format"];

/// See module docs.
pub struct NoAllocInHotPath;

impl Rule for NoAllocInHotPath {
    fn id(&self) -> RuleId {
        RuleId::NoAllocInHotPath
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<LintViolation>) {
        if file.hot_ranges.is_empty() {
            return;
        }
        for i in 0..file.tokens().len() {
            let line = file.tokens()[i].line;
            if !file.is_hot_line(line) {
                continue;
            }
            for name in ALLOC_METHODS {
                if is_method_call(file, i, name) {
                    out.push(violation_at(
                        file,
                        self.id(),
                        i,
                        format!("`.{name}()` allocates inside a `gv-lint: hot` region"),
                    ));
                }
            }
            for (head, name) in ALLOC_PATHS {
                if is_path_call(file, i, head, name) {
                    out.push(violation_at(
                        file,
                        self.id(),
                        i,
                        format!("`{head}::{name}` allocates inside a `gv-lint: hot` region"),
                    ));
                }
            }
            for name in ALLOC_MACROS {
                if is_macro(file, i, name) {
                    out.push(violation_at(
                        file,
                        self.id(),
                        i,
                        format!("`{name}!` allocates inside a `gv-lint: hot` region"),
                    ));
                }
            }
        }
    }
}
