//! `forbid-unsafe`: every crate root forbids unsafe code.
//!
//! The workspace is pure safe Rust — even the parallel RRA's shared
//! lower bound is a *safe* `AtomicU64` CAS loop, so no module currently
//! needs an exception. `#![forbid(unsafe_code)]` at each crate root makes
//! that a compile-time guarantee rather than a habit; this rule makes
//! removing the attribute a CI failure. A root listed in
//! [`DENY_OK_ROOTS`] may carry `#![deny(unsafe_code)]` instead (deny can
//! be overridden item-locally; forbid cannot) — the list is empty today
//! and exists so a future FFI/SIMD module must name itself here.

use super::Rule;
use crate::source::SourceFile;
use crate::violation::{LintViolation, RuleId};

/// Crate roots allowed to downgrade `forbid` to `deny(unsafe_code)`.
pub const DENY_OK_ROOTS: &[&str] = &[];

/// See module docs.
pub struct ForbidUnsafe;

/// Is `rel_path` a crate root the rule applies to?
fn is_crate_root(rel_path: &str) -> bool {
    rel_path == "src/lib.rs"
        || rel_path == "crates/cli/src/main.rs"
        || (rel_path.starts_with("crates/")
            && rel_path.ends_with("/src/lib.rs")
            && rel_path.matches('/').count() == 3)
}

impl Rule for ForbidUnsafe {
    fn id(&self) -> RuleId {
        RuleId::ForbidUnsafe
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<LintViolation>) {
        if !is_crate_root(&file.rel_path) {
            return;
        }
        let tokens = file.tokens();
        let mut found = false;
        for i in 0..tokens.len() {
            let lint = file.tok_text(i);
            let ok_level = lint == "forbid"
                || (lint == "deny" && DENY_OK_ROOTS.contains(&file.rel_path.as_str()));
            if ok_level
                && i + 3 < tokens.len()
                && file.tok_text(i + 1) == "("
                && file.tok_text(i + 2) == "unsafe_code"
                && file.tok_text(i + 3) == ")"
            {
                found = true;
                break;
            }
        }
        if !found {
            out.push(LintViolation {
                rule: self.id(),
                file: file.rel_path.clone(),
                line: 1,
                col: 1,
                message: "crate root lacks `#![forbid(unsafe_code)]` (a safe-code \
                          exception must be named in DENY_OK_ROOTS)"
                    .to_string(),
                chain: Vec::new(),
            });
        }
    }
}
