//! `recorder-gate`: decision-level emits sit behind `detailed()`.
//!
//! PR 2's level-2 telemetry (histograms, event rings) is free only
//! because every emit is gated on `Recorder::detailed()` — a
//! compile-time `false` for `NoopRecorder`. An ungated `record_event` /
//! `record_value` / `record_histogram` call in a library crate pays for
//! event construction even when nobody is listening, and on the distance
//! path that is a per-call cost.
//!
//! The check is lexical: an emit call must have an enclosing `fn` whose
//! body mentions the gate before the call site — `detailed` (a direct
//! check), `detail` (the cached `let detail = recorder.detailed()`
//! pattern in the RRA search), or `armed` (the obs timer-carried gate,
//! `DetailTimer::armed`). Fixture tests pin this contract.

use super::{violation_at, Rule};
use crate::source::{enclosing_fn_start, FileKind, SourceFile};
use crate::violation::{LintViolation, RuleId};

/// Emit methods that are only meaningful under `detailed()`.
const GATED_METHODS: &[&str] = &["record_value", "record_event", "record_histogram"];

/// Idents accepted as evidence of the gate within the enclosing fn.
const GATE_IDENTS: &[&str] = &["detailed", "detail", "armed"];

/// See module docs.
pub struct RecorderGate;

impl Rule for RecorderGate {
    fn id(&self) -> RuleId {
        RuleId::RecorderGate
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<LintViolation>) {
        if file.kind != FileKind::LibSrc || file.crate_name == "obs" {
            return;
        }
        let tokens = file.tokens();
        for (i, t) in tokens.iter().enumerate() {
            let line = t.line;
            if file.is_test_line(line) {
                continue;
            }
            let is_emit = GATED_METHODS
                .iter()
                .any(|name| super::is_method_call(file, i, name));
            if !is_emit {
                continue;
            }
            let gated = match enclosing_fn_start(file, i) {
                Some(fn_idx) => (fn_idx..i).any(|k| GATE_IDENTS.contains(&file.tok_text(k))),
                None => false,
            };
            if !gated {
                out.push(violation_at(
                    file,
                    self.id(),
                    i,
                    format!(
                        "`.{}()` without a visible `detailed()` gate in the enclosing \
                         function — detailed-only emits must be guarded",
                        file.tok_text(i)
                    ),
                ));
            }
        }
    }
}
