//! `panic-reachability` — interprocedural panic-path detection.
//!
//! `no-unwrap-in-lib` is lexical: it flags the `unwrap()` where it is
//! written. This rule closes its blind spot: a `pub` library function
//! that *calls a private helper* that unwraps is just as much a panic in
//! a user's face, but the lexical rule never connects the two. Pass 2
//! walks the call graph: every `pub` library fn reachable from a
//! `Detector::detect` impl, `StreamingDetector::push`, or a CLI entry is
//! an exposure point; any hard-panic site (`unwrap`/`expect`/`panic!`
//! family) transitively reachable from one is reported *at the panic
//! source*, with the full call chain attached so the diagnostic reads as
//! a path, not a point.
//!
//! `[]`-indexing panics are modeled in the effect table but deliberately
//! not reported here: bounds-checked slice indexing is the idiom of every
//! numeric kernel in this workspace, and flagging each one would bury the
//! real signal (the hard-panic sites) in hundreds of allows.
//!
//! Suppression: an inline allow for this rule on the source line *or any
//! chain link* (engine-side), plus carry-over — a site already excused
//! for `no-unwrap-in-lib` (inline or baseline) keeps that one written
//! reason.

use crate::baseline::Baseline;
use crate::callgraph::{CallSite, WorkspaceModel};
use crate::rules::{chain_links, describe_site, sanctioned_by, WorkspaceRule, LIB_CRATES};
use crate::source::FileKind;
use crate::violation::{LintViolation, RuleId};

/// See the module docs for the rule's semantics.
pub struct PanicReachability;

impl WorkspaceRule for PanicReachability {
    fn id(&self) -> RuleId {
        RuleId::PanicReachability
    }

    fn check(&self, m: &WorkspaceModel<'_>, baseline: &Baseline, out: &mut Vec<LintViolation>) {
        let site_ok = |s: &CallSite| !s.test;
        let from_roots = m.reachable(&m.roots(), &site_ok);
        // Exposure points: pub library fns on a detector/CLI path.
        let entries: Vec<usize> = (0..m.fns.len())
            .filter(|&i| {
                let f = &m.fns[i];
                from_roots[i]
                    && !f.is_test
                    && f.body.is_some()
                    && f.effectively_public()
                    && LIB_CRATES.contains(&m.crate_of(f))
                    && m.files[f.file].kind == FileKind::LibSrc
            })
            .collect();
        let exposed = m.reachable(&entries, &site_ok);
        for (sidx, s) in m.sites.iter().enumerate() {
            if !s.externs.panic || s.test || !exposed[s.caller] {
                continue;
            }
            if sanctioned_by(m, baseline, s, &[RuleId::NoUnwrapInLib]) {
                continue;
            }
            let Some(chain) = m.chain_to(&entries, sidx, &site_ok) else {
                continue;
            };
            let entry = m.fns[m.sites[chain[0]].caller].qualified_name();
            out.push(LintViolation {
                rule: self.id(),
                file: m.files[s.file].rel_path.clone(),
                line: s.line,
                col: s.col,
                message: format!(
                    "{} can panic and is reachable from pub `{}` on a detector/CLI path \
                     ({} call(s) deep)",
                    describe_site(s),
                    entry,
                    chain.len()
                ),
                chain: chain_links(m, &chain),
            });
        }
    }
}
