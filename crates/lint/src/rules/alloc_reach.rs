//! `alloc-reachability` — allocation hiding behind a call in a hot region.
//!
//! `no-alloc-in-hot-path` sees only allocations written *textually*
//! inside a `// gv-lint: hot` region. This is exactly how the PR 8
//! per-push `Vec` growth survived review: the hot loop called a helper,
//! the helper allocated, and the lexical rule saw a clean region. Pass 2
//! closes the gap: the backward effect closure marks every function that
//! can transitively allocate, and any call made inside a hot region that
//! resolves to a marked function is reported, with a descent chain down
//! to one concrete allocation site.
//!
//! Direct allocations inside the region stay `no-alloc-in-hot-path`'s
//! finding (one rule per blind spot, no double report). An inline allow
//! for `no-alloc-in-hot-path` on the call line carries over — the
//! already-written amortization argument counts for both rules. Gated
//! sites (behind a `detailed`/`armed`/`enabled` recorder check) are
//! exempt as sources and as hot callers: detailed-mode telemetry buys
//! its allocations knowingly, and the default path never takes the
//! branch.

use crate::baseline::Baseline;
use crate::callgraph::{CallSite, WorkspaceModel};
use crate::rules::{chain_links, describe_site, sanctioned_by, WorkspaceRule};
use crate::violation::{LintViolation, RuleId};
use std::collections::BTreeSet;

/// See the module docs for the rule's semantics.
pub struct AllocReachability;

impl WorkspaceRule for AllocReachability {
    fn id(&self) -> RuleId {
        RuleId::AllocReachability
    }

    fn check(&self, m: &WorkspaceModel<'_>, baseline: &Baseline, out: &mut Vec<LintViolation>) {
        let site_ok = |s: &CallSite| !s.test && !s.gated;
        let mut direct = vec![false; m.fns.len()];
        for s in &m.sites {
            if !s.test && !s.gated && s.externs.alloc {
                direct[s.caller] = true;
            }
        }
        let allocy = m.closure(&direct, &site_ok);
        for (sidx, s) in m.sites.iter().enumerate() {
            if !s.hot || s.test || s.gated || s.externs.alloc {
                continue; // direct allocs are no-alloc-in-hot-path's finding
            }
            if !s.callees.iter().any(|&c| allocy[c]) {
                continue;
            }
            if sanctioned_by(m, baseline, s, &[RuleId::NoAllocInHotPath]) {
                continue;
            }
            let chain = descend_to_alloc(m, sidx, &allocy);
            let sink = chain
                .last()
                .map(|&last| describe_site(&m.sites[last]))
                .unwrap_or_default();
            out.push(LintViolation {
                rule: self.id(),
                file: m.files[s.file].rel_path.clone(),
                line: s.line,
                col: s.col,
                message: format!(
                    "{} inside a hot region transitively allocates (reaches {})",
                    describe_site(s),
                    sink
                ),
                chain: chain_links(m, &chain),
            });
        }
    }
}

/// Walks from the hot site down the alloc closure to one concrete
/// allocation site, first-match at every level so the chain is
/// deterministic. Cycles terminate via the visited set.
fn descend_to_alloc(m: &WorkspaceModel<'_>, start: usize, allocy: &[bool]) -> Vec<usize> {
    let mut chain = vec![start];
    let mut visited = BTreeSet::new();
    let mut cur = match m.sites[start].callees.iter().find(|&&c| allocy[c]) {
        Some(&c) => c,
        None => return chain,
    };
    loop {
        if !visited.insert(cur) {
            break;
        }
        if let Some(&direct) = m.fn_sites[cur]
            .iter()
            .find(|&&x| !m.sites[x].test && !m.sites[x].gated && m.sites[x].externs.alloc)
        {
            chain.push(direct);
            break;
        }
        let mut next = None;
        for &sidx in &m.fn_sites[cur] {
            let s = &m.sites[sidx];
            if s.test || s.gated {
                continue;
            }
            if let Some(&c) = s
                .callees
                .iter()
                .find(|&&c| allocy[c] && !visited.contains(&c))
            {
                chain.push(sidx);
                next = Some(c);
                break;
            }
        }
        match next {
            Some(c) => cur = c,
            None => break,
        }
    }
    chain
}
