//! `no-unwrap-in-lib`: library code must not panic on recoverable paths.
//!
//! PR 4 pushed typed errors (`Error::NonFiniteInput`, `InvalidParameter`)
//! to every public entry point; a stray `unwrap()` in a library crate
//! re-opens the panic path this work closed. Test code is exempt —
//! panicking is how tests fail.

use super::{is_macro, is_method_call, violation_at, Rule, LIB_CRATES};
use crate::source::{FileKind, SourceFile};
use crate::violation::{LintViolation, RuleId};

/// See module docs.
pub struct NoUnwrapInLib;

impl Rule for NoUnwrapInLib {
    fn id(&self) -> RuleId {
        RuleId::NoUnwrapInLib
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<LintViolation>) {
        if file.kind != FileKind::LibSrc || !LIB_CRATES.contains(&file.crate_name.as_str()) {
            return;
        }
        for i in 0..file.tokens().len() {
            let line = file.tokens()[i].line;
            if file.is_test_line(line) {
                continue;
            }
            for name in ["unwrap", "expect"] {
                if is_method_call(file, i, name) {
                    out.push(violation_at(
                        file,
                        self.id(),
                        i,
                        format!(
                            "`.{name}()` in library code — return a typed error \
                             (or allow with a written infallibility argument)"
                        ),
                    ));
                }
            }
            if is_macro(file, i, "panic") {
                out.push(violation_at(
                    file,
                    self.id(),
                    i,
                    "`panic!` in library code — return a typed error instead".to_string(),
                ));
            }
        }
    }
}
