//! `no-float-eq`: exact float comparison hides rounding bugs.
//!
//! The parallel RRA contract (PR 3) is *bit-identity* across thread
//! counts — but that is proven by dedicated tests comparing whole ranked
//! reports, not by sprinkling `==` over `f64`s in library code, where an
//! exact comparison is usually an accident (and `NaN != NaN` makes it a
//! trap). Comparisons against float literals or `f64::` constants in
//! non-test library code must use `total_cmp`, an epsilon, or carry an
//! allow-directive arguing why exactness is intended.
//!
//! The check is lexical: it fires when either operand of `==`/`!=` is a
//! float literal or an `f32`/`f64` associated constant. Float-typed
//! variables compared to each other are out of scope (no type inference
//! in a lexer) — the differential tests in gv-check cover those paths.

use super::{violation_at, Rule};
use crate::lexer::TokenKind;
use crate::source::{FileKind, SourceFile};
use crate::violation::{LintViolation, RuleId};

/// Associated constants of `f32`/`f64` treated as float operands.
const FLOAT_CONSTS: &[&str] = &[
    "INFINITY",
    "NEG_INFINITY",
    "NAN",
    "EPSILON",
    "MIN_POSITIVE",
    "MAX",
    "MIN",
];

/// See module docs.
pub struct NoFloatEq;

impl Rule for NoFloatEq {
    fn id(&self) -> RuleId {
        RuleId::NoFloatEq
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<LintViolation>) {
        if file.kind != FileKind::LibSrc {
            return;
        }
        let tokens = file.tokens();
        for i in 0..tokens.len() {
            let t = tokens[i];
            if t.kind != TokenKind::Punct || file.is_test_line(t.line) {
                continue;
            }
            let op = file.tok_text(i);
            if op != "==" && op != "!=" {
                continue;
            }
            let left = i > 0 && float_operand_ending_at(file, i - 1);
            let right = i + 1 < tokens.len() && float_operand_starting_at(file, i + 1);
            if left || right {
                out.push(violation_at(
                    file,
                    self.id(),
                    i,
                    format!(
                        "`{op}` against a float operand — use `total_cmp`, an epsilon, \
                         or allow with a reason why exact equality is intended"
                    ),
                ));
            }
        }
    }
}

/// Does the expression ending at token `i` look like a float operand?
fn float_operand_ending_at(file: &SourceFile, i: usize) -> bool {
    let tokens = file.tokens();
    if tokens[i].kind == TokenKind::Float {
        return true;
    }
    // `f64::INFINITY` read backwards: CONST, `::`, f64|f32.
    tokens[i].kind == TokenKind::Ident
        && FLOAT_CONSTS.contains(&file.tok_text(i))
        && i >= 2
        && file.tok_text(i - 1) == "::"
        && matches!(file.tok_text(i - 2), "f32" | "f64")
}

/// Does the expression starting at token `i` look like a float operand?
fn float_operand_starting_at(file: &SourceFile, i: usize) -> bool {
    let tokens = file.tokens();
    match tokens[i].kind {
        TokenKind::Float => true,
        // Unary minus before a float literal.
        TokenKind::Punct if file.tok_text(i) == "-" => {
            i + 1 < tokens.len() && tokens[i + 1].kind == TokenKind::Float
        }
        TokenKind::Ident if matches!(file.tok_text(i), "f32" | "f64") => {
            i + 2 < tokens.len()
                && file.tok_text(i + 1) == "::"
                && FLOAT_CONSTS.contains(&file.tok_text(i + 2))
        }
        _ => false,
    }
}
