//! `no-wall-clock-outside-obs`: timing flows through the `Recorder`.
//!
//! PR 1's zero-overhead contract holds because the obs layer owns every
//! clock read — `time_stage`, `StageTimer`, `DetailTimer` all gate on
//! `Recorder::enabled`/`detailed`, so a `NoopRecorder` pipeline never
//! touches `Instant::now()`. A direct `Instant`/`SystemTime` use in a
//! library crate bypasses that gate and silently re-times the hot path.
//! Bench binaries are exempt (they exist to measure wall time), as is
//! the obs crate itself.

use super::{violation_at, Rule, CLOCK_CRATES};
use crate::lexer::TokenKind;
use crate::source::{FileKind, SourceFile};
use crate::violation::{LintViolation, RuleId};

/// See module docs.
pub struct NoWallClockOutsideObs;

impl Rule for NoWallClockOutsideObs {
    fn id(&self) -> RuleId {
        RuleId::NoWallClockOutsideObs
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<LintViolation>) {
        if CLOCK_CRATES.contains(&file.crate_name.as_str()) {
            return;
        }
        if !matches!(file.kind, FileKind::LibSrc | FileKind::BinSrc) {
            return;
        }
        for (i, t) in file.tokens().iter().enumerate() {
            if t.kind != TokenKind::Ident || file.is_test_line(t.line) {
                continue;
            }
            let text = file.tok_text(i);
            if text == "Instant" || text == "SystemTime" {
                out.push(violation_at(
                    file,
                    self.id(),
                    i,
                    format!(
                        "`{text}` outside the obs layer — route timing through \
                         `Recorder` (`time_stage`, `StageTimer`, `DetailTimer`)"
                    ),
                ));
            }
        }
    }
}
