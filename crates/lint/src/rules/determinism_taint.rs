//! `determinism-taint` — nondeterministic values on result paths.
//!
//! The RRA guarantee (PAPER.md §5) is a deterministic, total visit order:
//! the same series and parameters must rank the same discords, bit for
//! bit, on any thread count. `no-wall-clock-outside-obs` and
//! `no-nondeterminism` police the *sources* lexically — but a wall-clock
//! reading taken in an allowed crate and *returned* into `core` is
//! invisible to them. This rule follows the value: a nondeterministic
//! source (`Instant::now`, `thread::current`, armed `HashMap` iteration)
//! whose result is **consumed** (let-bound, assigned, returned, or in
//! tail position), connected through consumed, ungated calls to a
//! function on a result-producing path (a `RESULT_CRATES` library fn
//! reachable from a detector or CLI entry), is reported at the source
//! with the flow chain attached.
//!
//! The recorder-gate machinery exempts gated code: any site past a
//! `detailed`/`detail`/`armed`/`enabled` gate check in its body is
//! considered observability-only and never taints. Sanctions written for
//! the lexical source rules carry over.

use crate::baseline::Baseline;
use crate::callgraph::{CallSite, WorkspaceModel};
use crate::rules::{chain_links, describe_site, sanctioned_by, WorkspaceRule, RESULT_CRATES};
use crate::source::FileKind;
use crate::violation::{LintViolation, RuleId};

/// See the module docs for the rule's semantics.
pub struct DeterminismTaint;

impl WorkspaceRule for DeterminismTaint {
    fn id(&self) -> RuleId {
        RuleId::DeterminismTaint
    }

    fn check(&self, m: &WorkspaceModel<'_>, baseline: &Baseline, out: &mut Vec<LintViolation>) {
        let call_ok = |s: &CallSite| !s.test;
        // Taint only flows through calls whose value is used and that sit
        // outside a recorder gate.
        let flow_ok = |s: &CallSite| !s.test && s.consumed && !s.gated;
        let from_roots = m.reachable(&m.roots(), &call_ok);
        // Anchor on the *public* result surface: the diagnostic names the
        // entry point whose output the taint corrupts, not whichever
        // private helper happens to sit closest to the source.
        let result_fns: Vec<usize> = (0..m.fns.len())
            .filter(|&i| {
                let f = &m.fns[i];
                from_roots[i]
                    && !f.is_test
                    && f.effectively_public()
                    && RESULT_CRATES.contains(&m.crate_of(f))
                    && m.files[f.file].kind == FileKind::LibSrc
            })
            .collect();
        for (sidx, s) in m.sites.iter().enumerate() {
            if !s.externs.nondet || s.test || s.gated || !s.consumed {
                continue;
            }
            if sanctioned_by(
                m,
                baseline,
                s,
                &[RuleId::NoWallClockOutsideObs, RuleId::NoNondeterminism],
            ) {
                continue;
            }
            let Some(chain) = m.chain_to(&result_fns, sidx, &flow_ok) else {
                continue;
            };
            let entry = m.fns[m.sites[chain[0]].caller].qualified_name();
            out.push(LintViolation {
                rule: self.id(),
                file: m.files[s.file].rel_path.clone(),
                line: s.line,
                col: s.col,
                message: format!(
                    "nondeterministic value from {} flows into result-producing `{}` \
                     ({} hop(s))",
                    describe_site(s),
                    entry,
                    chain.len()
                ),
                chain: chain_links(m, &chain),
            });
        }
    }
}
