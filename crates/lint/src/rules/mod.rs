//! The rule registry and the applicability tables shared across rules.
//!
//! Each rule is one file, one struct, one [`Rule`] impl. Rules are purely
//! lexical: they see the analyzed [`SourceFile`] (tokens, regions) and
//! push [`LintViolation`]s; allow-directives and baselines are applied by
//! the engine afterwards, so rules never need to know about suppression.

use crate::baseline::Baseline;
use crate::callgraph::{CallKind, CallSite, WorkspaceModel};
use crate::source::SourceFile;
use crate::violation::{ChainLink, LintViolation, RuleId};

mod alloc_reach;
mod determinism_taint;
mod float_eq;
mod forbid_unsafe;
mod hot_alloc;
mod nondeterminism;
mod panic_reach;
mod recorder_gate;
mod schema_const;
mod unwrap_in_lib;
mod wall_clock;

pub use alloc_reach::AllocReachability;
pub use determinism_taint::DeterminismTaint;
pub use float_eq::NoFloatEq;
pub use forbid_unsafe::ForbidUnsafe;
pub use hot_alloc::NoAllocInHotPath;
pub use nondeterminism::NoNondeterminism;
pub use panic_reach::PanicReachability;
pub use recorder_gate::RecorderGate;
pub use schema_const::JsonlSchemaConst;
pub use unwrap_in_lib::NoUnwrapInLib;
pub use wall_clock::NoWallClockOutsideObs;

/// A single lint rule.
pub trait Rule {
    /// The rule's id (stable, kebab-case via `RuleId::as_str`).
    fn id(&self) -> crate::violation::RuleId;
    /// Checks one file, pushing findings into `out`.
    fn check(&self, file: &SourceFile, out: &mut Vec<LintViolation>);
}

/// An interprocedural rule: sees the whole workspace call graph (pass 2).
///
/// Workspace rules receive the baseline so that *existing* sanctions can
/// carry over — a site whose panic is already argued infallible for
/// `no-unwrap-in-lib` must not need a second, duplicate reason for
/// `panic-reachability`.
pub trait WorkspaceRule {
    /// The rule's id (stable, kebab-case via `RuleId::as_str`).
    fn id(&self) -> crate::violation::RuleId;
    /// Checks the workspace model, pushing findings into `out`.
    fn check(&self, model: &WorkspaceModel<'_>, baseline: &Baseline, out: &mut Vec<LintViolation>);
}

/// Every active rule, in report order.
pub fn all_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(NoUnwrapInLib),
        Box::new(NoWallClockOutsideObs),
        Box::new(NoAllocInHotPath),
        Box::new(NoFloatEq),
        Box::new(NoNondeterminism),
        Box::new(RecorderGate),
        Box::new(JsonlSchemaConst),
        Box::new(ForbidUnsafe),
    ]
}

/// Every active interprocedural rule, in report order.
pub fn workspace_rules() -> Vec<Box<dyn WorkspaceRule>> {
    vec![
        Box::new(PanicReachability),
        Box::new(AllocReachability),
        Box::new(DeterminismTaint),
    ]
}

/// Library crates whose non-test code must not panic (`no-unwrap-in-lib`).
/// The CLI and bench crates are binaries — they may abort on bad input.
pub const LIB_CRATES: &[&str] = &[
    "timeseries",
    "sax",
    "sequitur",
    "hilbert",
    "datasets",
    "discord",
    "core",
    "obs",
    "check",
    "lint",
    "grammarviz",
];

/// Crates whose outputs feed user-visible results — anomaly reports,
/// grammars, invariants — and must therefore be iteration-order
/// deterministic (`no-nondeterminism`).
pub const RESULT_CRATES: &[&str] = &[
    "sax",
    "sequitur",
    "discord",
    "core",
    "check",
    "lint",
    "grammarviz",
];

/// Crates that may read the wall clock (`no-wall-clock-outside-obs`):
/// the obs layer owns timing, bench binaries measure it.
pub const CLOCK_CRATES: &[&str] = &["obs", "bench"];

/// Emits one violation at token index `i` of `file`.
pub(crate) fn violation_at(
    file: &SourceFile,
    rule: crate::violation::RuleId,
    i: usize,
    message: String,
) -> LintViolation {
    let t = file.tokens()[i];
    LintViolation {
        rule,
        file: file.rel_path.clone(),
        line: t.line,
        col: t.col,
        message,
        chain: Vec::new(),
    }
}

/// Is token `i` a method-call receiver position: `.` `name` `(`?
pub(crate) fn is_method_call(file: &SourceFile, i: usize, name: &str) -> bool {
    let tokens = file.tokens();
    file.tok_text(i) == name
        && i > 0
        && file.tok_text(i - 1) == "."
        && i + 1 < tokens.len()
        && matches!(file.tok_text(i + 1), "(" | "::")
}

/// Is token `i` the head of a path call `Head::name`?
pub(crate) fn is_path_call(file: &SourceFile, i: usize, head: &str, name: &str) -> bool {
    let tokens = file.tokens();
    file.tok_text(i) == head
        && i + 2 < tokens.len()
        && file.tok_text(i + 1) == "::"
        && file.tok_text(i + 2) == name
}

/// Is token `i` a macro invocation `name!`?
pub(crate) fn is_macro(file: &SourceFile, i: usize, name: &str) -> bool {
    let tokens = file.tokens();
    file.tok_text(i) == name && i + 1 < tokens.len() && file.tok_text(i + 1) == "!"
}

/// How a call site reads in a diagnostic: `.unwrap()`, `panic!`,
/// `` `[]` indexing ``, `helper()`.
pub(crate) fn describe_site(s: &CallSite) -> String {
    match s.kind {
        CallKind::Index => "`[]` indexing".to_string(),
        CallKind::Macro => format!("`{}!`", s.name),
        CallKind::Method { .. } => format!("`.{}()`", s.name),
        CallKind::Plain | CallKind::Path => format!("`{}()`", s.name),
    }
}

/// Renders a site-index path as displayable chain links.
pub(crate) fn chain_links(m: &WorkspaceModel<'_>, sites: &[usize]) -> Vec<ChainLink> {
    sites
        .iter()
        .map(|&sidx| {
            let s = &m.sites[sidx];
            ChainLink {
                file: m.files[s.file].rel_path.clone(),
                line: s.line,
                note: format!(
                    "`{}` calls {}",
                    m.fns[s.caller].qualified_name(),
                    describe_site(s)
                ),
            }
        })
        .collect()
}

/// Is the effect at site `s` already sanctioned for one of the given
/// lexical rules — an inline allow on its line, or a baseline entry? The
/// written infallibility argument carries over to the interprocedural
/// rule instead of demanding a duplicate.
pub(crate) fn sanctioned_by(
    m: &WorkspaceModel<'_>,
    baseline: &Baseline,
    s: &CallSite,
    rules: &[RuleId],
) -> bool {
    let file = &m.files[s.file];
    if file
        .allows
        .iter()
        .any(|a| rules.contains(&a.rule) && a.target_line == s.line)
    {
        return true;
    }
    rules.iter().any(|&rule| {
        let probe = LintViolation {
            rule,
            file: file.rel_path.clone(),
            line: s.line,
            col: s.col,
            message: String::new(),
            chain: Vec::new(),
        };
        baseline.entries.iter().any(|e| e.matches(&probe))
    })
}
