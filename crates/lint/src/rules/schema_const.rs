//! `jsonl-schema-const`: one schema number, one constant.
//!
//! PR 2 bumped the JSONL schema to 2 by editing `gv_obs::SCHEMA_VERSION`
//! — and every writer (trace, events, explain, streaming snapshots) picks
//! the bump up because they all reference the constant. A writer that
//! hardcodes `"schema":2` in its template silently forks the version at
//! the next bump and `validate_jsonl` starts rejecting half the output.
//! Test assertions on *rendered* output are exempt — they pin bytes on
//! purpose.

use super::Rule;
use crate::lexer::TokenKind;
use crate::source::{FileKind, SourceFile};
use crate::violation::{LintViolation, RuleId};

/// How many following tokens to scan for `SCHEMA_VERSION` when the
/// template uses a positional `{}` placeholder — generous enough to span
/// a multi-argument `write!`, small enough not to cross functions.
const PLACEHOLDER_LOOKAHEAD: usize = 40;

/// See module docs.
pub struct JsonlSchemaConst;

impl Rule for JsonlSchemaConst {
    fn id(&self) -> RuleId {
        RuleId::JsonlSchemaConst
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<LintViolation>) {
        if matches!(file.kind, FileKind::TestSrc | FileKind::Example) {
            return;
        }
        let tokens = file.tokens();
        for i in 0..tokens.len() {
            let t = tokens[i];
            if t.kind != TokenKind::Str || file.is_test_line(t.line) {
                continue;
            }
            let lit = file.tok_text(i);
            // A JSON template writes the key as `\"schema\":` in a normal
            // string or `"schema":` in a raw string.
            let key_end = ["\\\"schema\\\":", "\"schema\":"]
                .iter()
                .find_map(|pat| lit.find(pat).map(|at| at + pat.len()));
            let Some(after) = key_end else { continue };
            let rest = &lit[after..];
            if rest.starts_with(|c: char| c.is_ascii_digit()) {
                out.push(LintViolation {
                    rule: self.id(),
                    file: file.rel_path.clone(),
                    line: t.line,
                    col: t.col,
                    message: "hardcoded JSONL schema number — reference \
                              `gv_obs::SCHEMA_VERSION` instead"
                        .to_string(),
                    chain: Vec::new(),
                });
            } else if rest.starts_with('{') {
                // Inline capture `{SCHEMA_VERSION}` satisfies the rule
                // from within the literal itself.
                if rest.starts_with("{SCHEMA_VERSION}") {
                    continue;
                }
                // Positional `{}`: the constant must appear among the
                // format arguments that follow.
                let end = (i + 1 + PLACEHOLDER_LOOKAHEAD).min(tokens.len());
                let found = (i + 1..end).any(|k| file.tok_text(k) == "SCHEMA_VERSION");
                if !found {
                    out.push(LintViolation {
                        rule: self.id(),
                        file: file.rel_path.clone(),
                        line: t.line,
                        col: t.col,
                        message: "JSONL schema placeholder not fed from \
                                  `SCHEMA_VERSION` — the version must come from \
                                  the single constant"
                            .to_string(),
                        chain: Vec::new(),
                    });
                }
            }
        }
    }
}
