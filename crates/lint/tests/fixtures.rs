//! Fixture corpus: every rule fires on its `bad.rs` and stays silent on
//! its `good.rs`, with spans pinned where the rule's value is the exact
//! location.

use gv_lint::rules::all_rules;
use gv_lint::{FileKind, RuleId, SourceFile};

/// Runs the full rule set over one fixture, returning violations of
/// `rule` only (fixtures are single-purpose, but a bad fixture for one
/// rule may legitimately trip another — e.g. the hot-alloc fixture's
/// `Vec` is fine outside a result crate but not inside one).
fn check(rule: RuleId, rel: &str, krate: &str, kind: FileKind, src: &str) -> Vec<(u32, u32)> {
    let file = SourceFile::analyze(rel, krate, kind, src.to_string());
    let mut out = Vec::new();
    for r in all_rules() {
        r.check(&file, &mut out);
    }
    out.iter()
        .filter(|v| v.rule == rule)
        .map(|v| (v.line, v.col))
        .collect()
}

/// One bad/good pair: `bad.rs` fires `expected_bad` times, `good.rs` not
/// at all, under the same classification.
fn fires_and_silences(
    rule: RuleId,
    rel: &str,
    krate: &str,
    kind: FileKind,
    bad: &str,
    good: &str,
    expected_bad: usize,
) {
    let bad_spans = check(rule, rel, krate, kind, bad);
    assert_eq!(
        bad_spans.len(),
        expected_bad,
        "{}: bad fixture should fire {expected_bad}x, got {bad_spans:?}",
        rule.as_str()
    );
    let good_spans = check(rule, rel, krate, kind, good);
    assert!(
        good_spans.is_empty(),
        "{}: good fixture should be silent, got {good_spans:?}",
        rule.as_str()
    );
}

#[test]
fn no_unwrap_in_lib_fixture() {
    fires_and_silences(
        RuleId::NoUnwrapInLib,
        "crates/core/src/fixture.rs",
        "core",
        FileKind::LibSrc,
        include_str!("fixtures/unwrap/bad.rs"),
        include_str!("fixtures/unwrap/good.rs"),
        1,
    );
}

#[test]
fn unwrap_span_is_exact() {
    // `    *values.first().unwrap()` — the violation anchors on the
    // `unwrap` ident itself: line 5, column 21.
    let spans = check(
        RuleId::NoUnwrapInLib,
        "crates/core/src/fixture.rs",
        "core",
        FileKind::LibSrc,
        include_str!("fixtures/unwrap/bad.rs"),
    );
    assert_eq!(spans, vec![(5, 21)]);
}

#[test]
fn no_wall_clock_fixture() {
    // Two `Instant` idents: the import and the `now()` call.
    fires_and_silences(
        RuleId::NoWallClockOutsideObs,
        "crates/discord/src/fixture.rs",
        "discord",
        FileKind::LibSrc,
        include_str!("fixtures/wall_clock/bad.rs"),
        include_str!("fixtures/wall_clock/good.rs"),
        2,
    );
}

#[test]
fn wall_clock_exempts_the_clock_crates() {
    let bad = include_str!("fixtures/wall_clock/bad.rs");
    for (rel, krate, kind) in [
        ("crates/obs/src/fixture.rs", "obs", FileKind::LibSrc),
        (
            "crates/bench/src/bin/fixture.rs",
            "bench",
            FileKind::BenchSrc,
        ),
    ] {
        let spans = check(RuleId::NoWallClockOutsideObs, rel, krate, kind, bad);
        assert!(spans.is_empty(), "{krate} owns the clock, got {spans:?}");
    }
}

#[test]
fn no_alloc_in_hot_path_fixture() {
    fires_and_silences(
        RuleId::NoAllocInHotPath,
        "crates/discord/src/fixture.rs",
        "discord",
        FileKind::LibSrc,
        include_str!("fixtures/hot_alloc/bad.rs"),
        include_str!("fixtures/hot_alloc/good.rs"),
        1,
    );
}

#[test]
fn hot_alloc_span_lands_inside_the_region() {
    let spans = check(
        RuleId::NoAllocInHotPath,
        "crates/discord/src/fixture.rs",
        "discord",
        FileKind::LibSrc,
        include_str!("fixtures/hot_alloc/bad.rs"),
    );
    // `.collect()` on line 6 — between the `hot` marker (line 3) and
    // `end-hot` (line 9).
    assert_eq!(spans, vec![(6, 58)]);
}

#[test]
fn no_float_eq_fixture() {
    fires_and_silences(
        RuleId::NoFloatEq,
        "crates/sax/src/fixture.rs",
        "sax",
        FileKind::LibSrc,
        include_str!("fixtures/float_eq/bad.rs"),
        include_str!("fixtures/float_eq/good.rs"),
        1,
    );
}

#[test]
fn float_eq_span_anchors_on_the_operator() {
    let spans = check(
        RuleId::NoFloatEq,
        "crates/sax/src/fixture.rs",
        "sax",
        FileKind::LibSrc,
        include_str!("fixtures/float_eq/bad.rs"),
    );
    // `    d == 0.0` — the `==` sits at line 5, column 7.
    assert_eq!(spans, vec![(5, 7)]);
}

#[test]
fn no_nondeterminism_fixture() {
    // Three `HashMap` idents: the import, the annotation, the ctor.
    fires_and_silences(
        RuleId::NoNondeterminism,
        "crates/core/src/fixture.rs",
        "core",
        FileKind::LibSrc,
        include_str!("fixtures/nondeterminism/bad.rs"),
        include_str!("fixtures/nondeterminism/good.rs"),
        3,
    );
}

#[test]
fn nondeterminism_exempts_non_result_crates() {
    let spans = check(
        RuleId::NoNondeterminism,
        "crates/datasets/src/fixture.rs",
        "datasets",
        FileKind::LibSrc,
        include_str!("fixtures/nondeterminism/bad.rs"),
    );
    assert!(
        spans.is_empty(),
        "datasets is not a result crate: {spans:?}"
    );
}

#[test]
fn recorder_gate_fixture() {
    fires_and_silences(
        RuleId::RecorderGate,
        "crates/core/src/fixture.rs",
        "core",
        FileKind::LibSrc,
        include_str!("fixtures/recorder_gate/bad.rs"),
        include_str!("fixtures/recorder_gate/good.rs"),
        1,
    );
}

#[test]
fn jsonl_schema_const_fixture() {
    fires_and_silences(
        RuleId::JsonlSchemaConst,
        "crates/core/src/fixture.rs",
        "core",
        FileKind::LibSrc,
        include_str!("fixtures/schema_const/bad.rs"),
        include_str!("fixtures/schema_const/good.rs"),
        1,
    );
}

#[test]
fn forbid_unsafe_fixture() {
    // Only fires when the file *is* a crate root.
    fires_and_silences(
        RuleId::ForbidUnsafe,
        "crates/core/src/lib.rs",
        "core",
        FileKind::LibSrc,
        include_str!("fixtures/forbid_unsafe/bad.rs"),
        include_str!("fixtures/forbid_unsafe/good.rs"),
        1,
    );
    let spans = check(
        RuleId::ForbidUnsafe,
        "crates/core/src/helper.rs",
        "core",
        FileKind::LibSrc,
        include_str!("fixtures/forbid_unsafe/bad.rs"),
    );
    assert!(spans.is_empty(), "non-root files are exempt: {spans:?}");
}
