//! Good: the same call shape, but the tie-break is a pure function of
//! the input — every run on every thread ranks identically.

#![forbid(unsafe_code)]

/// The detector trait the engine roots on.
pub trait Detector {
    fn detect(&self, data: &[f64]) -> Vec<usize>;
}

pub struct GrammarDetector;

impl Detector for GrammarDetector {
    fn detect(&self, data: &[f64]) -> Vec<usize> {
        rank(data)
    }
}

/// Result-producing entry point.
pub fn rank(data: &[f64]) -> Vec<usize> {
    let bias = tie_break(data);
    vec![bias % data.len().max(1)]
}

/// Deterministic tie-break derived from the data itself.
fn tie_break(data: &[f64]) -> usize {
    data.len()
}
