//! Bad: a nondeterministic value (the current thread's handle) is minted
//! in a private helper and flows through a return into the ranking that
//! the detector's results depend on. No lexical rule sees it:
//! `no-wall-clock-outside-obs` only matches `Instant`/`SystemTime`, and
//! `no-nondeterminism` only matches hash-container idents.

#![forbid(unsafe_code)]

use std::thread;

/// The detector trait the engine roots on.
pub trait Detector {
    fn detect(&self, data: &[f64]) -> Vec<usize>;
}

pub struct GrammarDetector;

impl Detector for GrammarDetector {
    fn detect(&self, data: &[f64]) -> Vec<usize> {
        rank(data)
    }
}

/// Result-producing entry point.
pub fn rank(data: &[f64]) -> Vec<usize> {
    let bias = tie_break();
    vec![bias % data.len().max(1)]
}

/// Mints the taint: which thread runs this changes the result.
fn tie_break() -> usize {
    let handle = thread::current();
    format!("{:?}", handle.id()).len()
}
