//! Bad: the hot region is textually allocation-free — it only makes a
//! method call — but the callee pushes into a `Vec`. This is exactly the
//! shape `no-alloc-in-hot-path` cannot see.

#![forbid(unsafe_code)]

pub struct StreamingDetector {
    buf: Vec<f64>,
}

impl StreamingDetector {
    pub fn push(&mut self, x: f64) {
        // gv-lint: hot
        self.record(x);
        // gv-lint: end-hot
    }

    /// Lexically innocent helper hiding the per-push growth.
    fn record(&mut self, x: f64) {
        self.buf.push(x);
    }
}
