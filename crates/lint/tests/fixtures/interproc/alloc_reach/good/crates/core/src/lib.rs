//! Good: the same hot region calling the same-named helper, but the
//! helper writes into preallocated state — nothing on the call chain
//! allocates.

#![forbid(unsafe_code)]

pub struct StreamingDetector {
    last: f64,
    count: u64,
}

impl StreamingDetector {
    pub fn push(&mut self, x: f64) {
        // gv-lint: hot
        self.record(x);
        // gv-lint: end-hot
    }

    /// Fixed-size state only; no growth on any push.
    fn record(&mut self, x: f64) {
        self.last = x;
        self.count += 1;
    }
}
