//! Bad: the public API panics two calls deep through an `assert!` no
//! lexical rule can see — `no-unwrap-in-lib` matches only
//! `unwrap`/`expect`/`panic!`, and every function here is locally clean.

#![forbid(unsafe_code)]

/// The detector trait the engine roots on.
pub trait Detector {
    fn detect(&self, data: &[f64]) -> Vec<usize>;
}

pub struct GrammarDetector;

impl Detector for GrammarDetector {
    fn detect(&self, data: &[f64]) -> Vec<usize> {
        rank(data)
    }
}

/// Public entry point — no panic in sight at this level.
pub fn rank(data: &[f64]) -> Vec<usize> {
    let best = pick(data);
    vec![best]
}

/// Intermediate hop: still lexically clean.
fn pick(data: &[f64]) -> usize {
    narrowest(data)
}

/// The buried panic path: an `assert!` on caller input.
fn narrowest(data: &[f64]) -> usize {
    assert!(!data.is_empty(), "no candidates");
    data.len() - 1
}
