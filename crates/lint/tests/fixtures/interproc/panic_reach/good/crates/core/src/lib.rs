//! Good: the same three-hop call chain, but the deepest helper degrades
//! gracefully instead of asserting — no panic is reachable from the
//! public surface.

#![forbid(unsafe_code)]

/// The detector trait the engine roots on.
pub trait Detector {
    fn detect(&self, data: &[f64]) -> Vec<usize>;
}

pub struct GrammarDetector;

impl Detector for GrammarDetector {
    fn detect(&self, data: &[f64]) -> Vec<usize> {
        rank(data)
    }
}

/// Public entry point.
pub fn rank(data: &[f64]) -> Vec<usize> {
    let best = pick(data);
    vec![best]
}

/// Intermediate hop.
fn pick(data: &[f64]) -> usize {
    narrowest(data)
}

/// Empty input degrades to index 0 instead of panicking.
fn narrowest(data: &[f64]) -> usize {
    data.len().saturating_sub(1)
}
