//! Fixture: ungated decision-level emit.

use gv_obs::{Event, EventKind, Recorder};

/// Pays for event construction even when nobody is listening.
pub fn emit<R: Recorder>(recorder: &R, position: u64) {
    recorder.record_event(Event {
        position,
        ..Event::new(EventKind::Abandoned)
    });
}
