//! Fixture: the emit sits behind the `detailed()` gate.

use gv_obs::{Event, EventKind, Recorder};

/// Emits only when decision-level detail is wanted.
pub fn emit<R: Recorder>(recorder: &R, position: u64) {
    if recorder.detailed() {
        recorder.record_event(Event {
            position,
            ..Event::new(EventKind::Abandoned)
        });
    }
}
