//! Mini fixture crate: one surviving violation, one inline allow, one
//! unused allow, one baselined violation.
#![forbid(unsafe_code)]

use std::time::Instant;

/// Survives: an unwrap with no allow.
pub fn first(values: &[f64]) -> f64 {
    *values.first().unwrap()
}

/// Suppressed by the inline allow on the next line.
pub fn second(values: &[f64]) -> f64 {
    // gv-lint: allow(no-unwrap-in-lib) fixture: inline allow round-trip
    *values.last().unwrap()
}

/// Carries an allow that excuses nothing.
pub fn third() -> u32 {
    // gv-lint: allow(no-float-eq) fixture: unused allow that must rot loudly
    1 + 1
}

/// Uses the baselined clock type so the entry above stays live.
pub fn fourth() -> Instant {
    Instant::now()
}
