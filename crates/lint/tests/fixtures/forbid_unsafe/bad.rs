//! Fixture: a crate root missing the forbid attribute.

/// A perfectly safe function in an unprotected crate.
pub fn answer() -> u32 {
    42
}
