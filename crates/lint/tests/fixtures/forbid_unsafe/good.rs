//! Fixture: the root locks unsafe out at compile time.
#![forbid(unsafe_code)]

/// A perfectly safe function in a protected crate.
pub fn answer() -> u32 {
    42
}
