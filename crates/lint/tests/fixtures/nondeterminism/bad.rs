//! Fixture: iterated hash container on a result path.

use std::collections::HashMap;

/// Counts occurrences — in seed-randomized order.
pub fn counts(ids: &[u32]) -> Vec<(u32, usize)> {
    let mut map: HashMap<u32, usize> = HashMap::new();
    for id in ids {
        *map.entry(*id).or_insert(0) += 1;
    }
    map.into_iter().collect()
}
