//! Fixture: ordered container keeps the output reproducible.

use std::collections::BTreeMap;

/// Counts occurrences — in key order, every run.
pub fn counts(ids: &[u32]) -> Vec<(u32, usize)> {
    let mut map: BTreeMap<u32, usize> = BTreeMap::new();
    for id in ids {
        *map.entry(*id).or_insert(0) += 1;
    }
    map.into_iter().collect()
}
