//! Fixture: hardcoded schema number in a JSONL template.

use std::fmt::Write;

/// Renders a record with a silently forked schema version.
pub fn render(label: &str) -> String {
    let mut out = String::new();
    let _ = write!(out, "{{\"schema\":2,\"label\":\"{label}\"}}");
    out
}
