//! Fixture: the version always comes from the one constant.

use gv_obs::SCHEMA_VERSION;
use std::fmt::Write;

/// Renders a record pinned to the shared schema constant.
pub fn render(label: &str) -> String {
    let mut out = String::new();
    let _ = write!(out, "{{\"schema\":{SCHEMA_VERSION},\"label\":\"{label}\"}}");
    out
}
