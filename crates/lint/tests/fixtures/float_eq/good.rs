//! Fixture: ordering-based comparison, NaN-safe.

/// Is the distance exactly zero?
pub fn is_zero(d: f64) -> bool {
    d.total_cmp(&0.0) == std::cmp::Ordering::Equal
}
