//! Fixture: exact float comparison against a literal.

/// Is the distance exactly zero?
pub fn is_zero(d: f64) -> bool {
    d == 0.0
}
