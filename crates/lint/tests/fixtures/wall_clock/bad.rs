//! Fixture: raw clock read in a library crate.

use std::time::Instant;

/// Times one call the forbidden way.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, u64) {
    let t0 = Instant::now();
    let out = f();
    (out, t0.elapsed().as_nanos() as u64)
}
