//! Fixture: timing flows through the obs layer's gate-carrying timers.

use gv_obs::{Recorder, Stage, StageTimer};

/// Times one call through the recorder.
pub fn timed<R: Recorder, T>(recorder: &R, f: impl FnOnce() -> T) -> T {
    let timer = StageTimer::start(recorder, Stage::Density);
    let out = f();
    timer.finish(recorder);
    out
}
