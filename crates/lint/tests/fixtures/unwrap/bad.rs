//! Fixture: `.unwrap()` on a recoverable path in library code.

/// Returns the first value.
pub fn first(values: &[f64]) -> f64 {
    *values.first().unwrap()
}
