//! Fixture: typed fallibility instead of unwrap; tests may panic freely.

/// Returns the first value, or `None` when empty.
pub fn first(values: &[f64]) -> Option<f64> {
    values.first().copied()
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_tests() {
        assert_eq!(super::first(&[1.5]).unwrap(), 1.5);
    }
}
