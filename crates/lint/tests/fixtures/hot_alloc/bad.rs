//! Fixture: allocation inside a declared hot region.

// gv-lint: hot
/// Sums squares with a needless intermediate allocation.
pub fn sum_squares(values: &[f64]) -> f64 {
    let squares: Vec<f64> = values.iter().map(|v| v * v).collect();
    squares.iter().sum()
}
// gv-lint: end-hot
