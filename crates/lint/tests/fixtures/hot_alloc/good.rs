//! Fixture: the blessed pattern — resize a caller-owned scratch buffer.

// gv-lint: hot
/// Writes squares into a reused buffer; allocation-free once warm.
pub fn squares_into(values: &[f64], out: &mut Vec<f64>) {
    out.resize(values.len(), 0.0);
    for (o, v) in out.iter_mut().zip(values) {
        *o = v * v;
    }
}
// gv-lint: end-hot

/// Outside the region, allocation is unrestricted.
pub fn squares(values: &[f64]) -> Vec<f64> {
    values.iter().map(|v| v * v).collect()
}
