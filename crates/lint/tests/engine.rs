//! Engine round-trip over a checked-in mini workspace: surviving
//! violations, inline-allow accounting, baseline suppression, and the
//! loud rot of unused/stale suppressions — all through the same
//! [`gv_lint::run`] entry point CI uses.

use std::path::Path;

use gv_lint::{run, EngineError, RuleId};

fn mini_root() -> &'static Path {
    Path::new(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/fixtures/mini_workspace"
    ))
}

#[test]
fn mini_workspace_report() {
    let report = run(mini_root()).expect("mini workspace lints");
    assert_eq!(report.files_scanned, 1);

    // One violation survives: the unwrap in `first()`.
    let unwraps: Vec<_> = report
        .violations
        .iter()
        .filter(|v| v.rule == RuleId::NoUnwrapInLib)
        .collect();
    assert_eq!(unwraps.len(), 1);
    assert_eq!(unwraps[0].file, "crates/core/src/lib.rs");
    assert_eq!((unwraps[0].line, unwraps[0].col), (9, 21));

    // The inline allow in `second()` suppressed exactly one finding.
    assert_eq!(report.inline_allowed, 1);

    // The baseline path-entry suppressed every `Instant` mention (the
    // import, the return type, the call).
    assert_eq!(report.baselined, 3);

    // Suppression rots loudly: the unused allow in `third()` and the
    // stale baseline entry for a file that no longer exists both come
    // back as lint-directive violations.
    let directives: Vec<_> = report
        .violations
        .iter()
        .filter(|v| v.rule == RuleId::LintDirective)
        .collect();
    assert_eq!(directives.len(), 2, "{directives:?}");
    assert!(directives
        .iter()
        .any(|v| v.file == "crates/core/src/lib.rs" && v.line == 20));
    assert!(directives
        .iter()
        .any(|v| v.file == "lint.toml" && v.message.contains("gone.rs")));

    // The tally carries zeroes for silent rules and exact counts for
    // loud ones.
    assert_eq!(report.tally["no-unwrap-in-lib"], 1);
    assert_eq!(report.tally["lint-directive"], 2);
    assert_eq!(report.tally["no-wall-clock-outside-obs"], 0);
    assert!(!report.is_clean());
}

#[test]
fn run_rejects_a_non_workspace_root() {
    // A member crate has a Cargo.toml but no `[workspace]` table.
    let member = mini_root().join("crates/core");
    match run(&member) {
        Err(EngineError::NotAWorkspace(p)) => assert!(p.ends_with("crates/core")),
        other => panic!("expected NotAWorkspace, got {other:?}"),
    }
}

/// The linter's own acceptance gate: the real workspace is clean. This is
/// the same invocation CI runs, so a violation introduced anywhere in the
/// repo fails `cargo test -p gv-lint` too.
#[test]
fn real_workspace_is_lint_clean() {
    let root = gv_lint::find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("test runs inside the workspace");
    let report = run(&root).expect("workspace lints");
    assert!(
        report.is_clean(),
        "workspace has lint violations:\n{}",
        report
            .violations
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
