//! Interprocedural rule round-trips over checked-in fixture workspaces:
//! each rule's `bad` workspace fires on a call chain that no lexical
//! rule can see (the bad fixtures are lexically clean by construction),
//! and the matching `good` workspace — same call shape, effect removed —
//! is silent. A generated-workspace test pins chain-link suppression:
//! an inline allow on an intermediate hop of the chain, not just the
//! effect site, suppresses the finding.

use std::path::{Path, PathBuf};

use gv_lint::{run, RuleId};

fn fixture_root(rule: &str, variant: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures/interproc")
        .join(rule)
        .join(variant)
}

/// 1-based line of the first fixture line containing `needle`.
fn line_of(src: &str, needle: &str) -> u32 {
    src.lines()
        .position(|l| l.contains(needle))
        .map(|i| i as u32 + 1)
        .unwrap_or_else(|| panic!("fixture lost its {needle:?} line"))
}

/// Runs the `bad` workspace: exactly one finding, of `rule` only — any
/// other rule firing would mean the chain is lexically visible after
/// all, which is exactly what these fixtures must rule out.
fn check_bad(rule: RuleId, dir: &str) -> gv_lint::LintReport {
    let report = run(&fixture_root(dir, "bad")).expect("bad fixture lints");
    let rules: Vec<RuleId> = report.violations.iter().map(|v| v.rule).collect();
    assert_eq!(rules, vec![rule], "{}", report_text(&report));
    report
}

fn check_good(dir: &str) {
    let report = run(&fixture_root(dir, "good")).expect("good fixture lints");
    assert!(report.is_clean(), "{}", report_text(&report));
}

fn report_text(report: &gv_lint::LintReport) -> String {
    report
        .violations
        .iter()
        .map(|v| v.to_string())
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn panic_reachability_sees_through_two_hops() {
    let src = include_str!("fixtures/interproc/panic_reach/bad/crates/core/src/lib.rs");
    let report = check_bad(RuleId::PanicReachability, "panic_reach");
    let v = &report.violations[0];
    // Anchored at the buried assert, not at the clean public surface.
    assert_eq!(v.line, line_of(src, "    assert!"));
    assert_eq!(v.file, "crates/core/src/lib.rs");
    assert!(v.message.contains("`rank`"), "{}", v.message);
    // The chain walks entry -> intermediate -> effect site.
    let chain_lines: Vec<u32> = v.chain.iter().map(|l| l.line).collect();
    assert_eq!(
        chain_lines,
        vec![
            line_of(src, "let best = pick(data);"),
            line_of(src, "narrowest(data)"),
            line_of(src, "    assert!"),
        ]
    );
    check_good("panic_reach");
}

#[test]
fn alloc_reachability_sees_through_the_helper() {
    let src = include_str!("fixtures/interproc/alloc_reach/bad/crates/core/src/lib.rs");
    let report = check_bad(RuleId::AllocReachability, "alloc_reach");
    let v = &report.violations[0];
    // Anchored at the hot-region call; the chain descends to the push.
    assert_eq!(v.line, line_of(src, "self.record(x);"));
    assert!(v.message.contains("`.push()`"), "{}", v.message);
    assert_eq!(
        v.chain.last().map(|l| l.line),
        Some(line_of(src, "self.buf.push(x);"))
    );
    check_good("alloc_reach");
}

#[test]
fn determinism_taint_follows_the_returned_value() {
    let src = include_str!("fixtures/interproc/determinism_taint/bad/crates/core/src/lib.rs");
    let report = check_bad(RuleId::DeterminismTaint, "determinism_taint");
    let v = &report.violations[0];
    // Anchored where the nondeterministic value is minted and bound.
    assert_eq!(v.line, line_of(src, "thread::current()"));
    assert!(v.message.contains("`rank`"), "{}", v.message);
    check_good("determinism_taint");
}

/// An inline allow on an *intermediate chain link* (the `pick` ->
/// `narrowest` hop) suppresses the finding: the justification can live
/// where the call decision is made, not only at the effect site.
#[test]
fn allow_on_a_chain_link_suppresses() {
    let src = include_str!("fixtures/interproc/panic_reach/bad/crates/core/src/lib.rs");
    let patched = src.replace(
        "    narrowest(data)",
        "    // gv-lint: allow(panic-reachability) callers of pick() pre-check non-emptiness\n    narrowest(data)",
    );
    assert_ne!(patched, src, "fixture lost the narrowest(data) hop");

    let root = Path::new(env!("CARGO_TARGET_TMPDIR")).join("chain_allow_ws");
    let core = root.join("crates/core/src");
    std::fs::create_dir_all(&core).expect("mkdir");
    std::fs::write(root.join("Cargo.toml"), "[workspace]\n").expect("write");
    std::fs::write(core.join("lib.rs"), patched).expect("write");

    let report = run(&root).expect("patched workspace lints");
    assert!(report.is_clean(), "{}", report_text(&report));
    // Suppressed, not silenced: the allow was consumed (so it does not
    // rot into a lint-directive finding) and counted.
    assert_eq!(report.inline_allowed, 1);
}
