//! SARIF output schema-shape validation: the linter's hand-rolled JSON
//! is parsed back with the in-tree serde_json shim and checked against
//! the SARIF 2.1.0 required-property surface GitHub code scanning
//! consumes — real parsing, not substring matching, so a misplaced
//! comma or an unescaped message can never ship. The fixture input is
//! the panic-reachability bad workspace, which guarantees at least one
//! result with a code flow.

use std::path::Path;

use gv_lint::{run, sarif};
use serde::Value;

fn fixture_report() -> gv_lint::LintReport {
    let root =
        Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/interproc/panic_reach/bad");
    run(&root).expect("fixture lints")
}

/// Object field lookup that panics with the key name on a miss.
fn get<'a>(v: &'a Value, key: &str) -> &'a Value {
    v.field(key)
        .unwrap_or_else(|e| panic!("missing {key:?}: {e}"))
}

fn as_str<'a>(v: &'a Value, key: &str) -> &'a str {
    match get(v, key) {
        Value::Str(s) => s,
        other => panic!("{key:?} is not a string: {other:?}"),
    }
}

fn as_array<'a>(v: &'a Value, key: &str) -> &'a [Value] {
    match get(v, key) {
        Value::Array(items) => items,
        other => panic!("{key:?} is not an array: {other:?}"),
    }
}

fn as_u64(v: &Value, key: &str) -> u64 {
    match get(v, key) {
        Value::U64(u) => *u,
        other => panic!("{key:?} is not an integer: {other:?}"),
    }
}

#[test]
fn sarif_log_has_the_required_2_1_0_shape() {
    let report = fixture_report();
    assert!(
        !report.violations.is_empty(),
        "fixture must produce results"
    );
    let log: Value = serde_json::from_str(&sarif::render(&report)).expect("SARIF parses as JSON");

    assert_eq!(
        as_str(&log, "$schema"),
        "https://json.schemastore.org/sarif-2.1.0.json"
    );
    assert_eq!(as_str(&log, "version"), "2.1.0");

    let runs = as_array(&log, "runs");
    assert_eq!(runs.len(), 1);
    let driver = get(get(&runs[0], "tool"), "driver");
    assert_eq!(as_str(driver, "name"), "gv-lint");
    assert!(!as_str(driver, "informationUri").is_empty());

    // Every declared rule has an id, a description, and a level.
    let rules = as_array(driver, "rules");
    assert!(
        rules.len() >= 12,
        "all rule ids declared, got {}",
        rules.len()
    );
    for rule in rules {
        assert!(!as_str(rule, "id").is_empty());
        assert!(!as_str(get(rule, "shortDescription"), "text").is_empty());
        assert_eq!(as_str(get(rule, "defaultConfiguration"), "level"), "error");
    }

    // Every result is internally consistent with the rules array and
    // mirrors one report violation in order.
    let results = as_array(&runs[0], "results");
    assert_eq!(results.len(), report.violations.len());
    for (result, v) in results.iter().zip(&report.violations) {
        let idx = as_u64(result, "ruleIndex") as usize;
        assert_eq!(as_str(&rules[idx], "id"), as_str(result, "ruleId"));
        assert_eq!(as_str(result, "ruleId"), v.rule.as_str());
        assert_eq!(as_str(result, "level"), "error");
        assert_eq!(as_str(get(result, "message"), "text"), v.message);

        let locations = as_array(result, "locations");
        assert_eq!(locations.len(), 1);
        let phys = get(&locations[0], "physicalLocation");
        assert_eq!(as_str(get(phys, "artifactLocation"), "uri"), v.file);
        let region = get(phys, "region");
        assert_eq!(as_u64(region, "startLine"), u64::from(v.line));
        assert_eq!(as_u64(region, "startColumn"), u64::from(v.col));

        // Interprocedural findings carry their chain as one thread flow.
        let flows = as_array(result, "codeFlows");
        assert_eq!(flows.len(), 1);
        let thread_flows = as_array(&flows[0], "threadFlows");
        assert_eq!(thread_flows.len(), 1);
        let steps = as_array(&thread_flows[0], "locations");
        assert_eq!(steps.len(), v.chain.len());
        for (step, link) in steps.iter().zip(&v.chain) {
            let loc = get(step, "location");
            let phys = get(loc, "physicalLocation");
            assert_eq!(as_str(get(phys, "artifactLocation"), "uri"), link.file);
            assert_eq!(
                as_u64(get(phys, "region"), "startLine"),
                u64::from(link.line)
            );
            assert_eq!(as_str(get(loc, "message"), "text"), link.note);
        }
    }
}

#[test]
fn sarif_rendering_is_byte_stable_across_runs() {
    let a = sarif::render(&fixture_report());
    let b = sarif::render(&fixture_report());
    assert_eq!(a, b);
    assert!(
        a.ends_with('\n'),
        "log is newline-terminated for artifact upload"
    );
}
