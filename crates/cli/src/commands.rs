//! Subcommand implementations.

use gv_discord::HotSaxConfig;
use gv_timeseries::{read_csv_column, Interval, TimeSeries};
use gva_core::obs::{CollectingRecorder, NoopRecorder, PipelineTrace};
use gva_core::{
    viz, AnomalyPipeline, Detector, EngineConfig, HotSaxDetector, PipelineConfig, SeriesView,
    Workspace,
};

use crate::args::Args;

const USAGE: &str = "\
usage: gv <command> [options]

commands:
  density   rule-density anomaly discovery (approximate, linear time)
  rra       Rare Rule Anomaly exact variable-length discord discovery
  explain   RRA plus per-discord provenance (rule, frequency, cost, density)
  hotsax    fixed-length HOTSAX discord discovery (baseline)
  wcad      compression-dissimilarity baseline (Keogh et al. 2004)
  motifs    variable-length recurrent pattern discovery
  grammar   print the induced grammar's rules
  dot       write the grammar hierarchy as GraphViz DOT (--out FILE)
  export    write the series and its rule-density curve as CSV
  stream    replay a file through the online detector (early detection)
  monitor   drive the online detector emitting per-interval `window` JSONL
            aggregates and SLO `health` verdicts (--interval N points,
            --rules FILE loads `key = value` SLO thresholds, --out PATH
            appends JSONL instead of stdout, --fail-on-breach exits
            non-zero on a breached verdict, --timing adds wall-clock
            fields at the cost of run-to-run determinism, --file - reads
            stdin)
  check     verify the paper invariants on a series (PASS/FAIL report),
            or scan a run ledger for result drift (--ledger PATH)
  lint      check the workspace source against the project's contracts
            (determinism, hot-path allocation, error handling, and the
            interprocedural panic/alloc-reachability and determinism-taint
            rules; --root DIR, --format text|sarif, --prune-baseline
            rewrites lint.toml with stale entries dropped)
  demo      run density + RRA on a built-in synthetic dataset
  bench     perf-regression harness over the deterministic workload
            registry: `bench run` appends to a history file, `bench diff`
            compares the two latest runs per workload, `bench list`
            prints the registry
            (--workload NAME|all, --reps N, --history PATH,
            --collapsed PATH writes flamegraph collapsed stacks)

common options:
  --file PATH        single-column CSV input (for density/rra/hotsax/grammar)
  --column N         CSV column to read (default 0)
  --window W         sliding window length (omit: dominant-period suggestion)
  --paa P            PAA word size (default 4)
  --alphabet A       alphabet size (default 4)
  --top K            how many anomalies/discords to report (default 3)
  --width N          plot width in characters (default 100)
  --trace            print a per-stage timing/counter table to stderr
                     (density/rra/explain/demo)
  --metrics PATH     append the run's trace as one JSONL record to PATH
  --events PATH      append per-decision search events as JSONL to PATH
                     (rra/explain)
  --metrics-every N  stream: append a metrics snapshot to --metrics every
                     N points (a time-resolved trajectory, not one record)
  --horizon N        stream/monitor: retain only the last N points — the
                     online detector evicts older tokens from its grammar
                     and runs in bounded memory (0 or omitted: unbounded)
  --threads N        RRA search worker threads (rra/explain/demo; default
                     from GV_THREADS, else 1) — ranked discords are
                     bit-identical for any thread count
  --dataset NAME     demo dataset: ecg0606 | power | video | tek14 | tek16 |
                     tek17 | nprs43 | nprs44 | commute
  --ledger PATH      append one run-provenance record (config fingerprint,
                     input digest, git SHA, result digest) to an
                     append-only JSONL ledger (density/rra/monitor);
                     `gv check --ledger PATH` scans it for result drift

unknown options are rejected per subcommand, with a nearest-flag hint";

/// Per-subcommand option allowlists — `Args::validate` rejects anything
/// else with a nearest-flag suggestion. `None` for unknown commands (the
/// dispatcher reports those itself).
fn allowed_options(command: &str) -> Option<&'static [&'static str]> {
    // "file", "column", "window", "paa", "alphabet" are the shared
    // pipeline options; each arm appends its own.
    match command {
        "density" => Some(&[
            "file", "column", "window", "paa", "alphabet", "top", "width", "trace", "metrics",
            "ledger",
        ]),
        "rra" => Some(&[
            "file", "column", "window", "paa", "alphabet", "top", "width", "trace", "metrics",
            "events", "threads", "ledger",
        ]),
        "explain" => Some(&[
            "file", "column", "window", "paa", "alphabet", "top", "trace", "metrics", "events",
            "threads",
        ]),
        "hotsax" | "motifs" => Some(&["file", "column", "window", "paa", "alphabet", "top"]),
        "wcad" => Some(&["file", "column", "window", "top"]),
        "grammar" => Some(&["file", "column", "window", "paa", "alphabet", "limit"]),
        "dot" => Some(&["file", "column", "window", "paa", "alphabet", "out"]),
        "export" => Some(&["file", "column", "window", "paa", "alphabet", "top", "out"]),
        "stream" => Some(&[
            "file",
            "column",
            "window",
            "paa",
            "alphabet",
            "threshold",
            "maturity",
            "check-every",
            "metrics-every",
            "metrics",
            "horizon",
        ]),
        "monitor" => Some(&[
            "file",
            "column",
            "window",
            "paa",
            "alphabet",
            "threshold",
            "maturity",
            "interval",
            "rules",
            "out",
            "ledger",
            "label",
            "fail-on-breach",
            "timing",
            "horizon",
        ]),
        "lint" => Some(&["root", "format", "prune-baseline"]),
        "check" => Some(&[
            "file", "column", "window", "paa", "alphabet", "top", "threads", "ledger",
        ]),
        "demo" => Some(&["dataset", "top", "width", "trace", "metrics", "threads"]),
        "bench" => Some(&["workload", "reps", "history", "collapsed"]),
        "help" => Some(&[]),
        _ => None,
    }
}

/// Entry point shared with `main`.
pub fn run(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv)?;
    if let Some(allowed) = args.command.as_deref().and_then(allowed_options) {
        args.validate(args.command.as_deref().unwrap_or(""), allowed)?;
    }
    match args.command.as_deref() {
        Some("density") => density(&args),
        Some("rra") => rra(&args),
        Some("explain") => explain(&args),
        Some("hotsax") => hotsax(&args),
        Some("wcad") => wcad(&args),
        Some("motifs") => motifs_cmd(&args),
        Some("grammar") => grammar(&args),
        Some("dot") => dot(&args),
        Some("export") => export(&args),
        Some("stream") => stream(&args),
        Some("monitor") => monitor(&args),
        Some("check") => check(&args),
        Some("lint") => lint(&args),
        Some("demo") => demo(&args),
        Some("bench") => bench(&args),
        Some("help") | None => {
            println!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(format!("unknown command {other:?}\n{USAGE}")),
    }
}

/// All diagnostic chatter goes through here so it lands on stderr with one
/// consistent `gv:` prefix (stdout stays parseable output only).
fn warn(message: impl std::fmt::Display) {
    eprintln!("gv: {message}");
}

/// An instrumentation sink when `--trace`, `--metrics`, or `--events` was
/// given; `None` keeps the zero-overhead uninstrumented path.
fn recorder_for(args: &Args) -> Option<CollectingRecorder> {
    (args.flag("trace") || args.get("metrics").is_some() || args.get("events").is_some())
        .then(CollectingRecorder::new)
}

/// Appends JSONL lines (one per element) to `path`, creating it if needed.
fn append_jsonl_lines(
    path: &str,
    lines: impl IntoIterator<Item = String>,
) -> Result<usize, String> {
    use std::io::Write as _;
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .map_err(|e| format!("--events {path}: {e}"))?;
    let mut n = 0;
    for line in lines {
        writeln!(file, "{line}").map_err(|e| format!("--events {path}: {e}"))?;
        n += 1;
    }
    Ok(n)
}

/// Delivers a finished trace: table to stderr under `--trace`, one JSONL
/// record appended to the `--metrics` file.
fn emit_trace(args: &Args, trace: &PipelineTrace) -> Result<(), String> {
    if args.flag("trace") {
        eprint!("{}", trace.render_table());
    }
    if let Some(path) = args.get("metrics") {
        trace
            .append_jsonl(std::path::Path::new(path))
            .map_err(|e| format!("--metrics {path}: {e}"))?;
    }
    Ok(())
}

/// Labels a snapshot with the standard pipeline parameters.
fn pipeline_trace(
    rec: &CollectingRecorder,
    label: &str,
    p: &AnomalyPipeline,
    points: usize,
    k: usize,
) -> PipelineTrace {
    rec.snapshot(label)
        .with_param("points", points as u64)
        .with_param("window", p.config().window() as u64)
        .with_param("paa", p.config().paa() as u64)
        .with_param("alphabet", p.config().alphabet() as u64)
        .with_param("top", k as u64)
}

/// The ledger fingerprint parameters shared by the batch detectors.
fn pipeline_params(p: &AnomalyPipeline, k: usize) -> [u64; 4] {
    [
        p.config().window() as u64,
        p.config().paa() as u64,
        p.config().alphabet() as u64,
        k as u64,
    ]
}

fn load_series(args: &Args) -> Result<TimeSeries, String> {
    let path = args.required("file")?;
    let col = args.usize_or("column", 0)?;
    if path == "-" {
        let stdin = std::io::stdin();
        return gv_timeseries::read_csv_column_reader(stdin.lock(), col)
            .map(|s| TimeSeries::named("stdin", s.values().to_vec()))
            .map_err(|e| format!("stdin: {e}"));
    }
    read_csv_column(path, col).map_err(|e| e.to_string())
}

/// Appends one run-provenance record to the `--ledger` file: the config
/// fingerprint, a bit-exact input digest, the producing git SHA, and a
/// digest over the ranked results — the raw material `gv check --ledger`
/// scans for cross-run result drift.
fn append_run_ledger(
    path: &str,
    label: &str,
    params: &[u64],
    series: &TimeSeries,
    results: impl Iterator<Item = (Interval, f64)>,
    wall_ns: u64,
) -> Result<(), String> {
    use gva_core::obs::{digest_series, git_sha, Fingerprint, LedgerRecord};
    let mut config_fp = Fingerprint::new();
    config_fp.write_str(label);
    for &p in params {
        config_fp.write_u64(p);
    }
    let mut result_fp = Fingerprint::new();
    let mut k = 0u64;
    for (interval, score) in results {
        result_fp
            .write_u64(interval.start as u64)
            .write_u64(interval.len() as u64)
            .write_f64(score);
        k += 1;
    }
    result_fp.write_u64(k);
    let record = LedgerRecord {
        label: label.to_string(),
        git_sha: git_sha(),
        config_fp: config_fp.finish(),
        input_digest: digest_series(series.values()),
        points: series.len() as u64,
        wall_ns,
        k,
        result_digest: result_fp.finish(),
    };
    record
        .append(std::path::Path::new(path))
        .map_err(|e| format!("--ledger {path}: {e}"))?;
    warn(format_args!("appended ledger record ({label}) to {path}"));
    Ok(())
}

/// `--window` if given; otherwise the autocorrelation-based suggestion
/// (the paper's "context-driven" parameter choice, automated).
fn window_for(args: &Args, series: &TimeSeries) -> Result<usize, String> {
    match args.get("window") {
        Some(w) => w
            .parse()
            .map_err(|_| "--window expects an integer".to_string()),
        None => {
            let w = gv_timeseries::suggest_window(series.values());
            warn(format_args!(
                "no --window given; using dominant-period suggestion {w}"
            ));
            Ok(w)
        }
    }
}

/// `--threads` if given; otherwise the environment default (`GV_THREADS`,
/// else sequential).
fn engine_for(args: &Args) -> Result<EngineConfig, String> {
    match args.get("threads") {
        None => Ok(EngineConfig::default()),
        Some(raw) => {
            let threads: usize = raw
                .parse()
                .map_err(|_| "--threads expects an integer".to_string())?;
            if threads == 0 {
                return Err("--threads must be at least 1".to_string());
            }
            Ok(EngineConfig::sequential().with_threads(threads))
        }
    }
}

fn pipeline_for(args: &Args, series: &TimeSeries) -> Result<AnomalyPipeline, String> {
    let window = window_for(args, series)?;
    let paa = args.usize_or("paa", 4)?;
    let alphabet = args.usize_or("alphabet", 4)?;
    let config = PipelineConfig::new(window, paa, alphabet).map_err(|e| e.to_string())?;
    Ok(AnomalyPipeline::new(config).with_engine(engine_for(args)?))
}

fn density(args: &Args) -> Result<(), String> {
    let series = load_series(args)?;
    let p = pipeline_for(args, &series)?;
    let k = args.usize_or("top", 3)?;
    let width = args.usize_or("width", 100)?;
    let recorder = recorder_for(args);
    let watch = args
        .get("ledger")
        .map(|_| gva_core::obs::Stopwatch::start());
    let report = match &recorder {
        Some(rec) => p.density_anomalies_with(series.values(), k, rec),
        None => p.density_anomalies(series.values(), k),
    }
    .map_err(|e| e.to_string())?;
    if let Some(rec) = &recorder {
        emit_trace(args, &pipeline_trace(rec, "density", &p, series.len(), k))?;
    }
    if let Some(path) = args.get("ledger") {
        append_run_ledger(
            path,
            "density",
            &pipeline_params(&p, k),
            &series,
            report
                .anomalies
                .iter()
                .map(|a| (a.interval, a.min_density as f64)),
            watch.map(|w| w.elapsed_ns()).unwrap_or(0),
        )?;
    }
    println!("series: {} ({} points)", series.name(), series.len());
    println!("signal : {}", viz::sparkline(series.values(), width));
    println!("density: {}", viz::density_strip(&report.curve, width));
    let intervals: Vec<Interval> = report.anomalies.iter().map(|a| a.interval).collect();
    println!(
        "anomaly: {}",
        viz::marker_row(series.len(), &intervals, width)
    );
    println!();
    print!("{}", viz::density_table(&report));
    Ok(())
}

fn rra(args: &Args) -> Result<(), String> {
    let series = load_series(args)?;
    let p = pipeline_for(args, &series)?;
    let k = args.usize_or("top", 3)?;
    let width = args.usize_or("width", 100)?;
    let recorder = recorder_for(args);
    let watch = args
        .get("ledger")
        .map(|_| gva_core::obs::Stopwatch::start());
    let report = match &recorder {
        Some(rec) => p.rra_discords_with(series.values(), k, rec),
        None => p.rra_discords(series.values(), k),
    }
    .map_err(|e| e.to_string())?;
    if let Some(path) = args.get("ledger") {
        append_run_ledger(
            path,
            "rra",
            &pipeline_params(&p, k),
            &series,
            report.discords.iter().map(|d| (d.interval(), d.distance)),
            watch.map(|w| w.elapsed_ns()).unwrap_or(0),
        )?;
    }
    if let Some(rec) = &recorder {
        emit_trace(args, &pipeline_trace(rec, "rra", &p, series.len(), k))?;
        if let Some(path) = args.get("events") {
            let (recorded, dropped) = rec.events_recorded_dropped();
            let n = append_jsonl_lines(path, rec.events_vec().iter().map(|e| e.to_jsonl()))?;
            warn(format_args!(
                "appended {n} event lines to {path} ({recorded} recorded, {dropped} dropped)"
            ));
        }
    }
    println!("series: {} ({} points)", series.name(), series.len());
    println!("signal : {}", viz::sparkline(series.values(), width));
    let intervals: Vec<Interval> = report.discords.iter().map(|d| d.interval()).collect();
    println!(
        "discord: {}",
        viz::marker_row(series.len(), &intervals, width)
    );
    println!();
    print!("{}", viz::rra_table(&report));
    println!(
        "\n{} candidates, {} distance calls ({} abandoned early)",
        report.num_candidates, report.stats.distance_calls, report.stats.early_abandoned
    );
    Ok(())
}

fn explain(args: &Args) -> Result<(), String> {
    let series = load_series(args)?;
    let p = pipeline_for(args, &series)?;
    let k = args.usize_or("top", 3)?;
    let recorder = recorder_for(args);
    let report = match &recorder {
        Some(rec) => p.explain_with(series.values(), k, rec),
        None => p.explain(series.values(), k),
    }
    .map_err(|e| e.to_string())?;
    if let Some(rec) = &recorder {
        emit_trace(args, &pipeline_trace(rec, "explain", &p, series.len(), k))?;
    }
    if let Some(path) = args.get("events") {
        let lines = report
            .rows
            .iter()
            .map(|r| r.to_jsonl())
            .chain(report.events.iter().map(|e| e.to_jsonl()))
            .chain(std::iter::once(report.summary_jsonl()));
        let n = append_jsonl_lines(path, lines)?;
        warn(format_args!("appended {n} JSONL lines to {path}"));
    }
    println!("series: {} ({} points)", series.name(), series.len());
    print!("{}", report.render_table());
    Ok(())
}

fn hotsax(args: &Args) -> Result<(), String> {
    let series = load_series(args)?;
    let window = args.required_usize("window")?;
    let paa = args.usize_or("paa", 3)?;
    let alphabet = args.usize_or("alphabet", 3)?;
    let k = args.usize_or("top", 3)?;
    let cfg = HotSaxConfig::new(window, paa, alphabet).map_err(|e| e.to_string())?;
    let detector = HotSaxDetector::new(cfg, k);
    let report = detector
        .detect(
            &SeriesView::new(series.values()),
            &mut Workspace::new(),
            &NoopRecorder,
        )
        .map_err(|e| e.to_string())?;
    println!("series: {} ({} points)", series.name(), series.len());
    println!("rank  position  length  nn-distance");
    for a in &report.anomalies {
        println!(
            "{:<5} {:<9} {:<7} {:.5}",
            a.rank,
            a.interval.start,
            a.interval.len(),
            a.score
        );
    }
    println!(
        "\n{} distance calls ({} abandoned early)",
        report.stats.distance_calls, report.stats.early_abandoned
    );
    Ok(())
}

fn wcad(args: &Args) -> Result<(), String> {
    let series = load_series(args)?;
    let window = args.required_usize("window")?;
    let k = args.usize_or("top", 3)?;
    let cfg = gva_core::wcad::WcadConfig::new(window);
    let scores = gva_core::wcad::wcad_scores(series.values(), &cfg).map_err(|e| e.to_string())?;
    println!("series: {} ({} points)", series.name(), series.len());
    println!("rank  interval            cdm");
    for (i, s) in scores.iter().take(k).enumerate() {
        println!("{:<5} {:<19} {:.4}", i, s.interval.to_string(), s.cdm);
    }
    println!(
        "\nnote: WCAD re-runs the compressor once per window and needs the window\n\
         to match the anomaly length — the limitations §6 of the paper discusses."
    );
    Ok(())
}

fn motifs_cmd(args: &Args) -> Result<(), String> {
    let series = load_series(args)?;
    let p = pipeline_for(args, &series)?;
    let k = args.usize_or("top", 5)?;
    let model = p.model(series.values()).map_err(|e| e.to_string())?;
    let motifs = gva_core::motifs(&model, k);
    println!("series: {} ({} points)", series.name(), series.len());
    println!("rank  rule   count  mean-len  min..max   period(sd)  first occurrences");
    for (i, m) in motifs.iter().enumerate() {
        let first: Vec<String> = m
            .occurrences
            .iter()
            .take(3)
            .map(|iv| iv.to_string())
            .collect();
        let period = m
            .periodicity()
            .map(|(mean, sd)| format!("{mean:.0}({sd:.0})"))
            .unwrap_or_else(|| "-".into());
        println!(
            "{:<5} {:<6} {:<6} {:<9.1} {:>4}..{:<5} {:<11} {}",
            i,
            m.rule.to_string(),
            m.count(),
            m.mean_length,
            m.min_length,
            m.max_length,
            period,
            first.join(" ")
        );
    }
    Ok(())
}

fn dot(args: &Args) -> Result<(), String> {
    let series = load_series(args)?;
    let p = pipeline_for(args, &series)?;
    let out = args.required("out")?;
    let model = p.model(series.values()).map_err(|e| e.to_string())?;
    let dot = gv_sequitur::to_dot(&model.grammar);
    std::fs::write(out, &dot).map_err(|e| e.to_string())?;
    println!(
        "wrote {} rules to {out} (render with `dot -Tsvg {out} -o grammar.svg`)",
        model.grammar.num_rules()
    );
    Ok(())
}

fn export(args: &Args) -> Result<(), String> {
    let series = load_series(args)?;
    let p = pipeline_for(args, &series)?;
    let out = args.required("out")?;
    let report = p
        .density_anomalies(series.values(), args.usize_or("top", 3)?)
        .map_err(|e| e.to_string())?;
    let density: Vec<f64> = report.curve.iter().map(|&d| d as f64).collect();
    gv_timeseries::write_csv_columns(out, &["value", "density"], &[series.values(), &density])
        .map_err(|e| e.to_string())?;
    println!("wrote {} rows to {out}", series.len());
    Ok(())
}

fn grammar(args: &Args) -> Result<(), String> {
    let series = load_series(args)?;
    let p = pipeline_for(args, &series)?;
    let limit = args.usize_or("limit", 20)?;
    let model = p.model(series.values()).map_err(|e| e.to_string())?;
    let counts = model.grammar.occurrence_counts();
    println!(
        "{} tokens, {} rules, grammar size {}",
        model.num_tokens(),
        model.grammar.num_rules(),
        model.grammar.grammar_size()
    );
    println!("rule   uses  occurrences  expansion-len");
    for rule in model.grammar.rules().take(limit + 1) {
        println!(
            "{:<6} {:<5} {:<12} {}",
            rule.id.to_string(),
            rule.rule_uses,
            counts.get(&rule.id).copied().unwrap_or(0),
            model.grammar.expansion_len(rule.id)
        );
    }
    Ok(())
}

fn stream(args: &Args) -> Result<(), String> {
    let series = load_series(args)?;
    let window = window_for(args, &series)?;
    let paa = args.usize_or("paa", 4)?;
    let alphabet = args.usize_or("alphabet", 4)?;
    let threshold = args.usize_or("threshold", 0)? as i64;
    let maturity = args.usize_or("maturity", window)?;
    let check_every = args.usize_or("check-every", (series.len() / 20).max(100))?;
    let metrics_every = args.usize_or("metrics-every", 0)?;
    let horizon = args.usize_or("horizon", 0)?;

    let config = PipelineConfig::new(window, paa, alphabet).map_err(|e| e.to_string())?;
    let mut det = gva_core::StreamingDetector::new(config)
        .with_horizon(horizon)
        .metrics_every(metrics_every);
    println!(
        "streaming {} points (W={window} P={paa} A={alphabet}, \
         alert threshold {threshold}, maturity {maturity}{})",
        series.len(),
        if horizon > 0 {
            format!(", horizon {horizon}")
        } else {
            String::new()
        }
    );
    let mut reported: Vec<Interval> = Vec::new();
    for (i, v) in series.iter() {
        det.push(v).map_err(|e| format!("point {}: {e}", i + 1))?;
        if (i + 1) % check_every == 0 || i + 1 == series.len() {
            for alert in det.alerts(threshold, maturity) {
                if !reported.iter().any(|r| r.overlaps(&alert)) {
                    println!("  t={:<8} ALERT {} (len {})", i + 1, alert, alert.len());
                    reported.push(alert);
                }
            }
        }
    }
    if reported.is_empty() {
        println!("  no alerts (threshold {threshold})");
    } else {
        println!("{} alert region(s) in total", reported.len());
    }
    if metrics_every > 0 {
        // Terminal flush: without it the final partial window (up to
        // `metrics_every - 1` points) would silently vanish from the
        // trajectory.
        det.flush_now();
        let snapshots = det.take_snapshots();
        if let Some(path) = args.get("metrics") {
            let n = append_jsonl_lines(path, snapshots.iter().map(|s| s.to_jsonl()))?;
            warn(format_args!("appended {n} metric snapshots to {path}"));
        } else {
            warn(format_args!(
                "{} metric snapshots collected (pass --metrics PATH to export them)",
                snapshots.len()
            ));
        }
    }
    Ok(())
}

/// `gv monitor` — live telemetry over the online detector: replays a CSV
/// (or stdin with `--file -`) through [`gva_core::StreamingDetector`],
/// flushing a cumulative snapshot every `--interval` points. A
/// [`WindowedAggregator`](gva_core::obs::WindowedAggregator) differences
/// consecutive snapshots into per-interval `window` JSONL records; a
/// [`HealthEngine`](gva_core::obs::HealthEngine) loaded from `--rules`
/// grades each window and emits a `health` record whenever the overall
/// verdict changes. Output is deterministic (byte-identical across runs
/// and thread counts) unless `--timing` enables the wall-clock-derived
/// fields. `--fail-on-breach` turns a breached verdict into a non-zero
/// exit — the CI health gate.
fn monitor(args: &Args) -> Result<(), String> {
    use gva_core::obs::{HealthEngine, Stopwatch, Verdict, WindowedAggregator};
    let series = load_series(args)?;
    let window = window_for(args, &series)?;
    let paa = args.usize_or("paa", 4)?;
    let alphabet = args.usize_or("alphabet", 4)?;
    let threshold = args.usize_or("threshold", 0)? as i64;
    let maturity = args.usize_or("maturity", window)?;
    let interval = args.usize_or("interval", (series.len() / 10).max(window))?;
    if interval == 0 {
        return Err("--interval must be at least 1".to_string());
    }
    let horizon = args.usize_or("horizon", 0)?;
    let timing = args.flag("timing");
    let label = args.get("label").unwrap_or("monitor");
    let mut engine = match args.get("rules") {
        Some(path) => {
            let text = std::fs::read_to_string(path).map_err(|e| format!("--rules {path}: {e}"))?;
            Some(HealthEngine::from_config(&text).map_err(|e| format!("--rules {path}: {e}"))?)
        }
        None => None,
    };
    if args.flag("fail-on-breach") && engine.is_none() {
        return Err("--fail-on-breach needs --rules (no SLOs to breach)".to_string());
    }

    let config = PipelineConfig::new(window, paa, alphabet).map_err(|e| e.to_string())?;
    let mut det = gva_core::StreamingDetector::new(config).with_horizon(horizon);
    let mut agg = WindowedAggregator::new().with_timing(timing);
    let watch = timing.then(Stopwatch::start);
    let mut lines: Vec<String> = Vec::new();
    let mut reported: Vec<Interval> = Vec::new();
    let mut breached = false;
    for (i, v) in series.iter() {
        det.push(v).map_err(|e| format!("point {}: {e}", i + 1))?;
        if (i + 1) % interval != 0 && i + 1 != series.len() {
            continue;
        }
        if !det.flush_now() {
            continue; // end-of-stream landed exactly on an interval boundary
        }
        let Some(snapshot) = det.take_snapshots().pop() else {
            continue;
        };
        for alert in det.alerts(threshold, maturity) {
            if !reported.iter().any(|r| r.overlaps(&alert)) {
                reported.push(alert);
            }
        }
        let wall_ns = watch.as_ref().map(|w| w.elapsed_ns()).unwrap_or(0);
        let stats = agg.observe(&snapshot, (i + 1) as u64, reported.len() as u64, wall_ns);
        lines.push(stats.to_jsonl());
        if let Some(engine) = engine.as_mut() {
            let (report, transition) = engine.evaluate(stats);
            breached |= report.verdict == Verdict::Breached;
            if transition {
                lines.push(report.to_jsonl());
            }
        }
    }

    let windows = agg.len() as u64 + agg.evicted();
    match args.get("out") {
        Some(path) => {
            let n = append_jsonl_lines(path, lines)?;
            warn(format_args!("appended {n} monitoring records to {path}"));
        }
        None => {
            for line in &lines {
                println!("{line}");
            }
        }
    }
    if let Some(path) = args.get("ledger") {
        append_run_ledger(
            path,
            label,
            &[
                window as u64,
                paa as u64,
                alphabet as u64,
                threshold as u64,
                maturity as u64,
                interval as u64,
                horizon as u64,
            ],
            &series,
            reported.iter().map(|iv| (*iv, 0.0)),
            watch.map(|w| w.elapsed_ns()).unwrap_or(0),
        )?;
    }
    let verdict = engine
        .as_ref()
        .and_then(|e| e.last_verdict())
        .map(|v| v.name())
        .unwrap_or("unmonitored");
    warn(format_args!(
        "{windows} window(s), {} alert region(s), final verdict: {verdict}",
        reported.len()
    ));
    if breached && args.flag("fail-on-breach") {
        return Err("SLO breached (see health records)".to_string());
    }
    Ok(())
}

/// `gv check`: run every `gv-check` invariant verifier on the series —
/// Sequitur digram uniqueness / rule utility, R0 reconstruction,
/// occurrence mapping, density recount, and the RRA-vs-brute-force
/// differential — and print the PASS/FAIL report. Fails (non-zero exit
/// through `main`) if any invariant is violated.
fn check(args: &Args) -> Result<(), String> {
    // Ledger mode: scan an append-only run ledger for cross-run result
    // drift (same config + input, different result digest) instead of
    // verifying a series.
    if let Some(path) = args.get("ledger") {
        let report = gv_check::ledger::verify_ledger(std::path::Path::new(path))?;
        print!("{}", report.render());
        return if report.passed() {
            Ok(())
        } else {
            Err(format!(
                "{} result-drift issue(s) in {path}",
                report.issues.len()
            ))
        };
    }
    let series = load_series(args)?;
    let window = window_for(args, &series)?;
    let paa = args.usize_or("paa", 4)?;
    let alphabet = args.usize_or("alphabet", 4)?;
    let k = args.usize_or("top", 3)?;
    let threads = engine_for(args)?.threads();
    let config = PipelineConfig::new(window, paa, alphabet).map_err(|e| e.to_string())?;
    let report =
        gv_check::check_series(series.values(), &config, k, threads).map_err(|e| e.to_string())?;
    println!(
        "series: {} ({} points, W={window} P={paa} A={alphabet}, top {k}, {threads} thread(s))",
        series.name(),
        series.len()
    );
    print!("{}", report.render());
    if report.passed() {
        println!("all invariants hold");
        Ok(())
    } else {
        Err(format!(
            "{} invariant violation(s) — this is a bug in the pipeline, please report it",
            report.num_violations()
        ))
    }
}

/// `gv lint` — run the project's static-analysis contracts (gv-lint)
/// over the workspace and print the report with its per-rule tally
/// (`--format text`, the default) or as SARIF 2.1.0 for code-scanning
/// upload (`--format sarif`). `--prune-baseline` rewrites `lint.toml`
/// with entries that no longer match any finding removed. Fails
/// (non-zero exit through `main`) on any surviving violation, the same
/// verdict the `gv_lint` CI gate enforces.
fn lint(args: &Args) -> Result<(), String> {
    let root = match args.get("root") {
        Some(dir) => std::path::PathBuf::from(dir),
        None => {
            let cwd = std::env::current_dir().map_err(|e| e.to_string())?;
            gv_lint::find_workspace_root(&cwd)
                .ok_or("no workspace root found above the current directory (try --root)")?
        }
    };
    let (report, baseline) = gv_lint::run_full(&root).map_err(|e| e.to_string())?;
    if args.flag("prune-baseline") {
        let path = root.join("lint.toml");
        match std::fs::read_to_string(&path) {
            Ok(original) => {
                let pruned = baseline.render_pruned(&original);
                if pruned == original {
                    eprintln!("gv lint: lint.toml already minimal, nothing pruned");
                } else {
                    std::fs::write(&path, &pruned)
                        .map_err(|e| format!("writing {}: {e}", path.display()))?;
                    let dropped = baseline.entries.iter().filter(|e| !e.used.get()).count();
                    if dropped == 0 {
                        eprintln!("gv lint: normalized lint.toml (no stale entries)");
                    } else {
                        let noun = if dropped == 1 { "entry" } else { "entries" };
                        eprintln!("gv lint: pruned {dropped} stale baseline {noun} from lint.toml");
                    }
                }
            }
            Err(_) => eprintln!("gv lint: no lint.toml at the workspace root, nothing to prune"),
        }
    }
    match args.get("format").unwrap_or("text") {
        "text" => print!("{}", gv_lint::report::render(&report)),
        "sarif" => print!("{}", gv_lint::sarif::render(&report)),
        other => return Err(format!("unknown --format {other:?} (expected text|sarif)")),
    }
    if report.is_clean() {
        Ok(())
    } else {
        Err(format!("{} violation(s)", report.violations.len()))
    }
}

fn demo(args: &Args) -> Result<(), String> {
    let name = args.get("dataset").unwrap_or("ecg0606");
    let (data, window, paa, alphabet) = match name {
        "ecg0606" => (gv_datasets::ecg::ecg0606(Default::default()), 120, 4, 4),
        "power" => (gv_datasets::power::power_demand(), 750, 6, 3),
        "video" => (gv_datasets::video::video_gun(), 150, 5, 3),
        "tek14" => (gv_datasets::telemetry::tek14(), 128, 4, 4),
        "tek16" => (gv_datasets::telemetry::tek16(), 128, 4, 4),
        "tek17" => (gv_datasets::telemetry::tek17(), 128, 4, 4),
        "nprs43" => (gv_datasets::respiration::nprs43(), 128, 5, 4),
        "nprs44" => (gv_datasets::respiration::nprs44(), 128, 5, 4),
        "commute" => (gv_datasets::trajectory::daily_commute().dataset, 350, 15, 4),
        other => return Err(format!("unknown demo dataset {other:?}")),
    };
    let width = args.usize_or("width", 100)?;
    let k = args.usize_or("top", 3)?;
    let config = PipelineConfig::new(window, paa, alphabet).map_err(|e| e.to_string())?;
    let p = AnomalyPipeline::new(config).with_engine(engine_for(args)?);
    let values = data.series.values();

    println!(
        "dataset: {} ({} points, W={window} P={paa} A={alphabet})",
        data.series.name(),
        values.len()
    );
    let truth: Vec<Interval> = data.anomalies.iter().map(|a| a.interval).collect();
    println!("signal : {}", viz::sparkline(values, width));
    println!("truth  : {}", viz::marker_row(values.len(), &truth, width));

    let recorder = recorder_for(args);
    let density = match &recorder {
        Some(rec) => p.density_anomalies_with(values, k, rec),
        None => p.density_anomalies(values, k),
    }
    .map_err(|e| e.to_string())?;
    println!("density: {}", viz::density_strip(&density.curve, width));
    let d_iv: Vec<Interval> = density.anomalies.iter().map(|a| a.interval).collect();
    println!("d-hits : {}", viz::marker_row(values.len(), &d_iv, width));

    let rra = match &recorder {
        Some(rec) => p.rra_discords_with(values, k, rec),
        None => p.rra_discords(values, k),
    }
    .map_err(|e| e.to_string())?;
    if let Some(rec) = &recorder {
        let label = format!("demo:{name}");
        emit_trace(args, &pipeline_trace(rec, &label, &p, values.len(), k))?;
    }
    let r_iv: Vec<Interval> = rra.discords.iter().map(|d| d.interval()).collect();
    println!("rra    : {}", viz::marker_row(values.len(), &r_iv, width));
    println!();
    println!("ground truth:");
    for a in &data.anomalies {
        println!("  {} — {}", a.interval, a.label);
    }
    println!("\ndensity anomalies:\n{}", viz::density_table(&density));
    println!("RRA discords:\n{}", viz::rra_table(&rra));
    println!(
        "RRA cost: {} distance calls over {} candidates",
        rra.stats.distance_calls, rra.num_candidates
    );
    Ok(())
}

/// `gv bench` — the perf-regression harness (see DESIGN.md):
///
/// - `gv bench run` (the default action) runs workloads from the
///   deterministic registry and appends a tagged-warmup record plus a
///   steady-state record per workload to `--history` (default
///   `bench_history.jsonl`), keyed by git SHA and run index;
/// - `gv bench diff` compares the two latest steady-state runs per
///   workload with noise-aware thresholds and fails (non-zero exit
///   through `main`) on any regression — the CI perf smoke gate;
/// - `gv bench list` prints the registry.
fn bench(args: &Args) -> Result<(), String> {
    use gv_bench::{diff, history, workload};
    match args.action.as_deref() {
        None | Some("run") => {
            let which = args.get("workload").unwrap_or("all");
            let reps = args.usize_or("reps", workload::DEFAULT_REPS)?;
            let history_arg = args.get("history").unwrap_or("bench_history.jsonl");
            let path = std::path::Path::new(history_arg);
            let names: Vec<&str> = if which == "all" {
                workload::WORKLOADS.to_vec()
            } else {
                vec![which]
            };
            let existing = if path.exists() {
                history::load(path)?
            } else {
                Vec::new()
            };
            let sha = history::git_sha();
            let mut collapsed = String::new();
            for name in names {
                let run = workload::run_workload(name, reps)?;
                let index = history::next_run_index(&existing, name);
                history::append(path, &run.to_records(&sha, index))?;
                println!(
                    "{name}: warmup {:.2} ms, steady {:.2} ms (best of {}) -> {history_arg} (run {index}, {sha})",
                    run.warmup_ns as f64 / 1e6,
                    run.wall_ns as f64 / 1e6,
                    run.reps,
                );
                // Flamegraph collapsed-stack lines, workload-prefixed so
                // all workloads can share one file.
                for line in run.trace.spans.collapsed().lines() {
                    collapsed.push_str(name);
                    collapsed.push(';');
                    collapsed.push_str(line);
                    collapsed.push('\n');
                }
            }
            if let Some(out) = args.get("collapsed") {
                std::fs::write(out, collapsed).map_err(|e| format!("--collapsed {out}: {e}"))?;
                println!("collapsed stacks -> {out}");
            }
            Ok(())
        }
        Some("diff") => {
            let path = args.required("history")?;
            let records = history::load(std::path::Path::new(path))?;
            let report = diff::diff_history(&records)?;
            for (workload, prev, cur) in &report.compared {
                println!("{workload}: run {prev} -> run {cur}");
            }
            if report.is_clean() {
                println!("bench diff: clean ({} workload(s))", report.compared.len());
                Ok(())
            } else {
                for r in &report.regressions {
                    warn(format!("perf regression: {r}"));
                }
                Err(format!(
                    "bench diff: {} perf regression(s)",
                    report.regressions.len()
                ))
            }
        }
        Some("list") => {
            for name in workload::WORKLOADS {
                println!("{name}");
            }
            Ok(())
        }
        Some(other) => Err(format!(
            "unknown bench action {other:?} (expected run, diff, or list)"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn help_runs() {
        assert!(run(&argv("help")).is_ok());
        assert!(run(&[]).is_ok());
    }

    #[test]
    fn unknown_command_fails() {
        assert!(run(&argv("frobnicate")).is_err());
    }

    #[test]
    fn unknown_option_fails_with_suggestion() {
        let err = run(&argv("density --file x.csv --windw 100")).unwrap_err();
        assert!(err.contains("unknown option --windw"), "{err}");
        assert!(err.contains("did you mean --window?"), "{err}");
        // --events is rra/explain-only; density rejects it.
        let err = run(&argv("density --file x.csv --events e.jsonl")).unwrap_err();
        assert!(err.contains("unknown option --events"), "{err}");
        // --metrics-every is stream-only.
        let err = run(&argv("rra --file x.csv --metrics-every 100")).unwrap_err();
        assert!(err.contains("unknown option --metrics-every"), "{err}");
    }

    #[test]
    fn demo_unknown_dataset_fails() {
        assert!(run(&argv("demo --dataset nope")).is_err());
    }

    #[test]
    fn demo_ecg_runs() {
        assert!(run(&argv("demo --dataset ecg0606 --top 1 --width 60")).is_ok());
    }

    #[test]
    fn file_commands_on_generated_csv() {
        // Round-trip through a real CSV file.
        let data = gv_datasets::ecg::ecg0606(Default::default());
        let dir = std::env::temp_dir().join("gv_cli_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ecg.csv");
        gv_timeseries::write_csv_column(&path, &data.series).unwrap();
        let core = format!(
            "--file {} --window 120 --paa 4 --alphabet 4",
            path.display()
        );
        let base = format!("{core} --top 1 --width 50");
        assert!(run(&argv(&format!("density {base}"))).is_ok());
        assert!(run(&argv(&format!("rra {base}"))).is_ok());
        assert!(run(&argv(&format!("grammar {core}"))).is_ok());
        assert!(run(&argv(&format!("motifs {core} --top 1"))).is_ok());
        assert!(run(&argv(&format!(
            "wcad --file {} --window 120",
            path.display()
        )))
        .is_ok());
        assert!(run(&argv(&format!(
            "hotsax --file {} --window 120 --top 1",
            path.display()
        )))
        .is_ok());
        // Parallel RRA search: same command, more worker threads.
        assert!(run(&argv(&format!("rra {base} --threads 2"))).is_ok());
        assert!(run(&argv(&format!("explain {core} --top 1 --threads 3"))).is_ok());
        // --threads is for the RRA-search commands only, and must be >= 1.
        let err = run(&argv(&format!("density {base} --threads 2"))).unwrap_err();
        assert!(err.contains("unknown option --threads"), "{err}");
        let err = run(&argv(&format!("rra {base} --threads 0"))).unwrap_err();
        assert!(err.contains("--threads must be at least 1"), "{err}");
        let err = run(&argv(&format!("rra {base} --threads two"))).unwrap_err();
        assert!(err.contains("--threads expects an integer"), "{err}");
        let out = dir.join("export.csv");
        assert!(run(&argv(&format!(
            "export {core} --top 1 --out {}",
            out.display()
        )))
        .is_ok());
        let text = std::fs::read_to_string(&out).unwrap();
        assert!(text.starts_with("value,density"));
        assert_eq!(text.lines().count(), 2301); // header + 2300 rows
        assert!(run(&argv(&format!(
            "stream --file {} --window 120 --threshold 0 --maturity 200",
            path.display()
        )))
        .is_ok());
        // Auto-window path (no --window given).
        assert!(run(&argv(&format!(
            "density --file {} --top 1 --width 40",
            path.display()
        )))
        .is_ok());
        let dot_out = dir.join("grammar.dot");
        assert!(run(&argv(&format!("dot {core} --out {}", dot_out.display()))).is_ok());
        let dot_text = std::fs::read_to_string(&dot_out).unwrap();
        assert!(dot_text.starts_with("digraph grammar {"));
        // Instrumented runs: --trace is stderr-only; --metrics appends one
        // JSONL record per run.
        let metrics = dir.join("metrics.jsonl");
        let _ = std::fs::remove_file(&metrics);
        assert!(run(&argv(&format!(
            "density {base} --trace --metrics {}",
            metrics.display()
        )))
        .is_ok());
        assert!(run(&argv(&format!(
            "rra {base} --metrics {}",
            metrics.display()
        )))
        .is_ok());
        let text = std::fs::read_to_string(&metrics).unwrap();
        assert_eq!(text.lines().count(), 2);
        assert!(text.contains("\"label\":\"density\""));
        assert!(text.contains("\"label\":\"rra\""));
        assert!(text.lines().all(|l| {
            l.starts_with("{\"schema\":4,") && l.ends_with('}') && l.contains("\"distance_calls\":")
        }));
        // explain: provenance table on stdout, full JSONL stream to --events.
        let events = dir.join("events.jsonl");
        let _ = std::fs::remove_file(&events);
        assert!(run(&argv(&format!(
            "explain {core} --top 1 --events {}",
            events.display()
        )))
        .is_ok());
        let text = std::fs::read_to_string(&events).unwrap();
        assert!(text.lines().count() > 2);
        assert!(text.contains("\"type\":\"explain\""));
        assert!(text.contains("\"type\":\"event\""));
        assert!(text.contains("\"type\":\"explain_summary\""));
        assert!(text
            .lines()
            .all(|l| l.starts_with("{\"schema\":4,") && l.ends_with('}')));
        // rra --events appends raw event lines too.
        let rra_events = dir.join("rra_events.jsonl");
        let _ = std::fs::remove_file(&rra_events);
        assert!(run(&argv(&format!(
            "rra {base} --events {}",
            rra_events.display()
        )))
        .is_ok());
        let text = std::fs::read_to_string(&rra_events).unwrap();
        assert!(!text.is_empty());
        assert!(text
            .lines()
            .all(|l| l.starts_with("{\"schema\":4,\"type\":\"event\"") && l.ends_with('}')));
        // stream --metrics-every exports a snapshot trajectory.
        let stream_metrics = dir.join("stream_metrics.jsonl");
        let _ = std::fs::remove_file(&stream_metrics);
        assert!(run(&argv(&format!(
            "stream --file {} --window 120 --metrics-every 500 --metrics {}",
            path.display(),
            stream_metrics.display()
        )))
        .is_ok());
        // 4 periodic snapshots plus the terminal flush covering the final
        // partial window (2300 % 500 = 300 points).
        let text = std::fs::read_to_string(&stream_metrics).unwrap();
        assert_eq!(text.lines().count(), 2300 / 500 + 1);
        assert!(text
            .lines()
            .all(|l| l.starts_with("{\"schema\":4,\"label\":\"stream\"")));
        assert!(text.lines().last().unwrap().contains("\"seen\":2300"));
    }

    #[test]
    fn missing_file_reports_error() {
        assert!(run(&argv("density --file /nonexistent.csv --window 10")).is_err());
    }

    fn fixture(name: &str) -> String {
        std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("fixtures")
            .join(name)
            .display()
            .to_string()
    }

    #[test]
    fn monitor_emits_windows_and_health_transitions() {
        let dir = std::env::temp_dir().join("gv_cli_monitor_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("monitor.jsonl");
        let _ = std::fs::remove_file(&out);
        let base = format!(
            "monitor --file {} --window 100 --interval 400 --threshold 1 --maturity 400",
            fixture("monitor_sine.csv")
        );
        // Clean SLOs pass even with --fail-on-breach.
        assert!(run(&argv(&format!(
            "{base} --rules {} --fail-on-breach --out {}",
            fixture("slo_clean.conf"),
            out.display()
        )))
        .is_ok());
        let text = std::fs::read_to_string(&out).unwrap();
        let windows = text
            .lines()
            .filter(|l| l.contains("\"type\":\"window\""))
            .count();
        assert_eq!(windows, 5, "2000 points / 400 interval");
        // Steady verdict: only the initial health transition is emitted.
        let health: Vec<&str> = text
            .lines()
            .filter(|l| l.contains("\"type\":\"health\""))
            .collect();
        assert_eq!(health.len(), 1, "{text}");
        assert!(health[0].contains("\"verdict\":\"healthy\""));
        assert!(text
            .lines()
            .all(|l| l.starts_with("{\"schema\":4,") && l.ends_with('}')));
        // Deterministic mode: no wall-clock-derived fields populated.
        assert!(text.contains("\"wall_ns\":0"));
        assert!(text.contains("\"span_shares\":{}"));

        // The tight SLO breaches on the planted anomaly's alert: non-zero
        // exit under --fail-on-breach, and the health stream records the
        // healthy -> breached -> healthy transitions.
        let out2 = dir.join("monitor_breached.jsonl");
        let _ = std::fs::remove_file(&out2);
        let breached = format!(
            "{base} --rules {} --fail-on-breach --out {}",
            fixture("slo_breached.conf"),
            out2.display()
        );
        let err = run(&argv(&breached)).unwrap_err();
        assert!(err.contains("SLO breached"), "{err}");
        let text = std::fs::read_to_string(&out2).unwrap();
        let verdicts: Vec<&str> = text
            .lines()
            .filter(|l| l.contains("\"type\":\"health\""))
            .collect();
        assert_eq!(verdicts.len(), 3, "{text}");
        assert!(verdicts[0].contains("\"verdict\":\"healthy\""));
        assert!(verdicts[1].contains("\"verdict\":\"breached\""));
        assert!(verdicts[1].contains("\"rule\":\"max_discord_rate\""));
        assert!(verdicts[2].contains("\"verdict\":\"healthy\""));
        // Without --fail-on-breach the same run exits cleanly.
        assert!(run(&argv(&format!(
            "{base} --rules {} --out {}",
            fixture("slo_breached.conf"),
            out2.display()
        )))
        .is_ok());
    }

    #[test]
    fn monitor_output_is_deterministic_across_runs() {
        let dir = std::env::temp_dir().join("gv_cli_monitor_det_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let mut bodies = Vec::new();
        for run_i in 0..2 {
            let out = dir.join(format!("det_{run_i}.jsonl"));
            let _ = std::fs::remove_file(&out);
            assert!(run(&argv(&format!(
                "monitor --file {} --window 100 --interval 300 --threshold 1 \
                 --maturity 400 --out {}",
                fixture("monitor_sine.csv"),
                out.display()
            )))
            .is_ok());
            bodies.push(std::fs::read_to_string(&out).unwrap());
        }
        assert_eq!(bodies[0], bodies[1]);
        assert!(!bodies[0].is_empty());
    }

    #[test]
    fn stream_and_monitor_accept_horizon() {
        let dir = std::env::temp_dir().join("gv_cli_horizon_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let file = fixture("monitor_sine.csv");
        // Bounded stream: the grammar evicts old tokens; the metrics
        // trajectory reports the churn and the final snapshot still covers
        // every point seen.
        let metrics = dir.join("stream_horizon.jsonl");
        let _ = std::fs::remove_file(&metrics);
        assert!(run(&argv(&format!(
            "stream --file {file} --window 100 --horizon 800 \
             --metrics-every 1000 --metrics {}",
            metrics.display()
        )))
        .is_ok());
        let text = std::fs::read_to_string(&metrics).unwrap();
        assert!(text.contains("\"horizon\":800"), "{text}");
        assert!(text.contains("\"tokens_evicted\":"), "{text}");
        // Bounded monitor runs are as deterministic as unbounded ones.
        let mut bodies = Vec::new();
        for run_i in 0..2 {
            let out = dir.join(format!("horizon_{run_i}.jsonl"));
            let _ = std::fs::remove_file(&out);
            assert!(run(&argv(&format!(
                "monitor --file {file} --window 100 --interval 300 --threshold 1 \
                 --maturity 400 --horizon 700 --out {}",
                out.display()
            )))
            .is_ok());
            bodies.push(std::fs::read_to_string(&out).unwrap());
        }
        assert_eq!(bodies[0], bodies[1]);
        assert!(!bodies[0].is_empty());
        // --horizon belongs to the streaming commands only.
        let err = run(&argv(&format!(
            "density --file {file} --window 100 --horizon 500"
        )))
        .unwrap_err();
        assert!(err.contains("unknown option --horizon"), "{err}");
        let err = run(&argv(&format!(
            "stream --file {file} --window 100 --horizon many"
        )))
        .unwrap_err();
        assert!(err.contains("--horizon expects an integer"), "{err}");
    }

    #[test]
    fn monitor_rejects_bad_configs() {
        let file = format!("--file {}", fixture("monitor_sine.csv"));
        // --fail-on-breach without rules is a configuration error.
        let err = run(&argv(&format!(
            "monitor {file} --window 100 --fail-on-breach"
        )))
        .unwrap_err();
        assert!(err.contains("--fail-on-breach needs --rules"), "{err}");
        // A rules file with a typo'd key errors up front.
        let dir = std::env::temp_dir().join("gv_cli_monitor_bad_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let bad = dir.join("bad.conf");
        std::fs::write(&bad, "max_latency = 5\n").unwrap();
        let err = run(&argv(&format!(
            "monitor {file} --window 100 --rules {}",
            bad.display()
        )))
        .unwrap_err();
        assert!(err.contains("unknown rule"), "{err}");
        let err = run(&argv(&format!("monitor {file} --window 100 --interval 0"))).unwrap_err();
        assert!(err.contains("--interval"), "{err}");
    }

    #[test]
    fn ledger_records_flow_into_check() {
        let data = gv_datasets::ecg::ecg0606(Default::default());
        let dir = std::env::temp_dir().join("gv_cli_ledger_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ecg.csv");
        gv_timeseries::write_csv_column(&path, &data.series).unwrap();
        let ledger = dir.join("ledger.jsonl");
        let _ = std::fs::remove_file(&ledger);
        let core = format!(
            "--file {} --window 120 --paa 4 --alphabet 4 --top 2 --ledger {}",
            path.display(),
            ledger.display()
        );
        // Two identical rra runs, one density run, one monitor session.
        assert!(run(&argv(&format!("rra {core}"))).is_ok());
        assert!(run(&argv(&format!("rra {core}"))).is_ok());
        assert!(run(&argv(&format!("density {core}"))).is_ok());
        assert!(run(&argv(&format!(
            "monitor --file {} --window 100 --interval 500 --threshold 1 \
             --maturity 400 --out {} --ledger {}",
            fixture("monitor_sine.csv"),
            dir.join("mon.jsonl").display(),
            ledger.display()
        )))
        .is_ok());
        let text = std::fs::read_to_string(&ledger).unwrap();
        assert_eq!(text.lines().count(), 4);
        assert!(text
            .lines()
            .all(|l| l.starts_with("{\"schema\":4,\"type\":\"ledger\"")));
        assert!(text.contains("\"label\":\"rra\""));
        assert!(text.contains("\"label\":\"density\""));
        assert!(text.contains("\"label\":\"monitor\""));
        // The identical rra runs agree, so the drift scan passes.
        assert!(run(&argv(&format!("check --ledger {}", ledger.display()))).is_ok());
        // Forge a drifting record (same config + input, different result
        // digest): the scan must fail.
        let rra_line = text
            .lines()
            .find(|l| l.contains("\"label\":\"rra\""))
            .unwrap();
        let digest_start = rra_line.find("\"result_digest\":").unwrap();
        let forged = format!("{}\"result_digest\":1}}", &rra_line[..digest_start]);
        let drifted = dir.join("drifted.jsonl");
        std::fs::write(&drifted, format!("{text}{forged}\n")).unwrap();
        let err = run(&argv(&format!("check --ledger {}", drifted.display()))).unwrap_err();
        assert!(err.contains("drift"), "{err}");
    }

    #[test]
    fn check_command_verifies_invariants() {
        let data = gv_datasets::ecg::ecg0606(Default::default());
        let dir = std::env::temp_dir().join("gv_cli_check_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ecg.csv");
        gv_timeseries::write_csv_column(&path, &data.series).unwrap();
        let core = format!(
            "--file {} --window 120 --paa 4 --alphabet 4",
            path.display()
        );
        assert!(run(&argv(&format!("check {core} --top 2"))).is_ok());
        // The differential holds for the parallel search too.
        assert!(run(&argv(&format!("check {core} --top 2 --threads 3"))).is_ok());
        // check is a pipeline command: it rejects foreign options.
        let err = run(&argv(&format!("check {core} --width 50"))).unwrap_err();
        assert!(err.contains("unknown option --width"), "{err}");
    }

    #[test]
    fn degenerate_configs_are_errors_not_panics() {
        let data = gv_datasets::ecg::ecg0606(Default::default());
        let dir = std::env::temp_dir().join("gv_cli_degenerate_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ecg.csv");
        gv_timeseries::write_csv_column(&path, &data.series).unwrap();
        let file = format!("--file {}", path.display());
        // Window longer than the series (2300 points).
        let err = run(&argv(&format!("rra {file} --window 99999"))).unwrap_err();
        assert!(err.contains("window"), "{err}");
        // PAA size larger than the window.
        let err = run(&argv(&format!("rra {file} --window 30 --paa 40"))).unwrap_err();
        assert!(err.to_lowercase().contains("paa"), "{err}");
        // One-letter alphabet cannot discretize anything.
        let err = run(&argv(&format!("rra {file} --window 120 --alphabet 1"))).unwrap_err();
        assert!(err.to_lowercase().contains("alphabet"), "{err}");
        // Asking for zero discords is a parameter error for every detector.
        for cmd in ["rra", "density", "hotsax"] {
            let err = run(&argv(&format!("{cmd} {file} --window 120 --top 0"))).unwrap_err();
            assert!(err.contains("at least one"), "{cmd}: {err}");
        }
    }

    #[test]
    fn non_finite_csv_is_rejected_at_load() {
        let dir = std::env::temp_dir().join("gv_cli_nan_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.csv");
        std::fs::write(&path, "1.0\n2.0\nNaN\n3.0\n").unwrap();
        for cmd in ["density", "rra", "check", "stream"] {
            let err = run(&argv(&format!(
                "{cmd} --file {} --window 2",
                path.display()
            )))
            .unwrap_err();
            assert!(err.contains("non-finite"), "{cmd}: {err}");
            assert!(err.contains("index 2"), "{cmd}: {err}");
        }
    }
}
