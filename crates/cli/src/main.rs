//! `gv` — a text-mode GrammarViz: grammar-based variable-length time
//! series anomaly discovery from the command line.
//!
//! ```text
//! gv density --file data.csv --window 150 --paa 5 --alphabet 3 [--top K]
//! gv rra     --file data.csv --window 150 --paa 5 --alphabet 3 [--top K]
//! gv hotsax  --file data.csv --window 150 [--paa 3] [--alphabet 3] [--top K]
//! gv grammar --file data.csv --window 150 --paa 5 --alphabet 3 [--limit N]
//! gv demo    --dataset ecg0606|power|video|tek14|tek16|tek17|nprs43|commute
//! gv lint    [--root DIR]   # the gv-lint static-analysis gate
//! ```
//!
//! Input files are single-column CSV (use `--column` to select another
//! column). The `density` and `rra` subcommands replace the two anomaly
//! panes of the GrammarViz 2.0 GUI (paper Figures 11–12).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod args;
mod commands;

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match commands::run(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("gv: {e}");
            ExitCode::FAILURE
        }
    }
}
