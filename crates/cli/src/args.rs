//! A tiny `--flag value` argument parser (no external dependencies).

use std::collections::HashMap;

/// Options that are switches, not `--key value` pairs: their presence
/// alone means "on", so the parser must not consume the next token.
const BOOL_FLAGS: &[&str] = &["trace", "timing", "fail-on-breach", "prune-baseline"];

/// Commands that take a second positional argument (an action), like
/// `gv bench diff`. Every other command rejects extra positionals.
const SUBCOMMAND_COMMANDS: &[&str] = &["bench"];

/// Parsed command line: the subcommand plus `--key value` options.
#[derive(Debug, Clone, Default)]
pub struct Args {
    /// The subcommand (first non-flag argument).
    pub command: Option<String>,
    /// The action (second positional) for commands in
    /// [`SUBCOMMAND_COMMANDS`], e.g. `diff` in `gv bench diff`.
    pub action: Option<String>,
    options: HashMap<String, String>,
}

impl Args {
    /// Parses `argv` (without the program name).
    ///
    /// Every option must be of the form `--key value` — except the known
    /// boolean switches ([`BOOL_FLAGS`]), which take no value. A bare
    /// valued `--key` at the end of the line or followed by another flag
    /// is an error.
    pub fn parse(argv: &[String]) -> Result<Self, String> {
        let mut out = Args::default();
        let mut it = argv.iter().peekable();
        while let Some(arg) = it.next() {
            if let Some(key) = arg.strip_prefix("--") {
                if BOOL_FLAGS.contains(&key) {
                    out.options.insert(key.to_string(), "true".to_string());
                    continue;
                }
                let value = it
                    .next()
                    .filter(|v| !v.starts_with("--"))
                    .ok_or_else(|| format!("option --{key} needs a value"))?;
                out.options.insert(key.to_string(), value.clone());
            } else if out.command.is_none() {
                out.command = Some(arg.clone());
            } else if out.action.is_none()
                && SUBCOMMAND_COMMANDS.contains(&out.command.as_deref().unwrap_or(""))
            {
                out.action = Some(arg.clone());
            } else {
                return Err(format!("unexpected argument {arg:?}"));
            }
        }
        Ok(out)
    }

    /// `true` when a boolean switch was present on the command line.
    pub fn flag(&self, key: &str) -> bool {
        self.options.contains_key(key)
    }

    /// A required string option.
    pub fn required(&self, key: &str) -> Result<&str, String> {
        self.options
            .get(key)
            .map(String::as_str)
            .ok_or_else(|| format!("missing required option --{key}"))
    }

    /// An optional string option.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// A required numeric option.
    pub fn required_usize(&self, key: &str) -> Result<usize, String> {
        self.required(key)?
            .parse()
            .map_err(|_| format!("--{key} expects an integer"))
    }

    /// An optional numeric option with a default.
    pub fn usize_or(&self, key: &str, default: usize) -> Result<usize, String> {
        match self.options.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("--{key} expects an integer")),
        }
    }

    /// Checks every given option against a per-subcommand allowlist.
    ///
    /// An unknown option is an error; when a known flag is close in edit
    /// distance, the message suggests it ("did you mean --window?"), so a
    /// typo doesn't silently fall back to a default value.
    pub fn validate(&self, command: &str, allowed: &[&str]) -> Result<(), String> {
        let mut keys: Vec<&str> = self.options.keys().map(String::as_str).collect();
        keys.sort_unstable(); // HashMap order is random; keep errors deterministic
        for key in keys {
            if allowed.contains(&key) {
                continue;
            }
            let mut msg = format!("unknown option --{key} for {command}");
            if let Some(near) = nearest_flag(key, allowed) {
                msg.push_str(&format!(" (did you mean --{near}?)"));
            }
            return Err(msg);
        }
        Ok(())
    }
}

/// The closest allowed flag by edit distance, when close enough to be a
/// plausible typo (within 2 edits, or a third of the flag's length for
/// long flags like `--metrics-every`).
fn nearest_flag<'a>(key: &str, allowed: &[&'a str]) -> Option<&'a str> {
    allowed
        .iter()
        .map(|&cand| (levenshtein(key, cand), cand))
        .min()
        .filter(|&(d, cand)| d <= (cand.len() / 3).max(2))
        .map(|(_, cand)| cand)
}

/// Classic two-row Levenshtein edit distance.
fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_command_and_options() {
        let a = Args::parse(&argv("density --file x.csv --window 150")).unwrap();
        assert_eq!(a.command.as_deref(), Some("density"));
        assert_eq!(a.required("file").unwrap(), "x.csv");
        assert_eq!(a.required_usize("window").unwrap(), 150);
    }

    #[test]
    fn missing_value_is_an_error() {
        assert!(Args::parse(&argv("rra --file")).is_err());
        assert!(Args::parse(&argv("rra --file --window 10")).is_err());
    }

    #[test]
    fn unexpected_positional_rejected() {
        assert!(Args::parse(&argv("rra extra")).is_err());
    }

    #[test]
    fn bench_takes_an_action_positional() {
        let a = Args::parse(&argv("bench diff --history h.jsonl")).unwrap();
        assert_eq!(a.command.as_deref(), Some("bench"));
        assert_eq!(a.action.as_deref(), Some("diff"));
        assert_eq!(a.required("history").unwrap(), "h.jsonl");
        // One action at most; other commands still reject positionals.
        assert!(Args::parse(&argv("bench diff extra")).is_err());
        assert!(Args::parse(&argv("density diff")).is_err());
    }

    #[test]
    fn defaults_and_missing() {
        let a = Args::parse(&argv("x")).unwrap();
        assert_eq!(a.usize_or("top", 3).unwrap(), 3);
        assert!(a.required("file").is_err());
        assert!(a.get("nothing").is_none());
    }

    #[test]
    fn boolean_flag_takes_no_value() {
        let a = Args::parse(&argv("density --trace --file x.csv")).unwrap();
        assert!(a.flag("trace"));
        assert_eq!(a.required("file").unwrap(), "x.csv");
        // Absent flag is simply false; valued options never read as flags
        // they weren't given.
        let b = Args::parse(&argv("density --file x.csv")).unwrap();
        assert!(!b.flag("trace"));
        // Last position works too — nothing to consume.
        assert!(Args::parse(&argv("rra --trace")).unwrap().flag("trace"));
    }

    #[test]
    fn bad_integer() {
        let a = Args::parse(&argv("x --top abc")).unwrap();
        assert!(a.usize_or("top", 1).is_err());
        assert!(a.required_usize("top").is_err());
    }

    #[test]
    fn edit_distance() {
        assert_eq!(levenshtein("window", "window"), 0);
        assert_eq!(levenshtein("widow", "window"), 1);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("kitten", "sitting"), 3);
    }

    #[test]
    fn validate_accepts_allowed_and_rejects_unknown() {
        let allowed = &["file", "window", "metrics-every"];
        let a = Args::parse(&argv("x --file f.csv --window 10")).unwrap();
        assert!(a.validate("x", allowed).is_ok());

        // A near-miss suggests the intended flag.
        let b = Args::parse(&argv("x --widow 10")).unwrap();
        let err = b.validate("x", allowed).unwrap_err();
        assert!(err.contains("--widow"), "{err}");
        assert!(err.contains("did you mean --window?"), "{err}");
        let c = Args::parse(&argv("x --metrics-evry 100")).unwrap();
        let err = c.validate("x", allowed).unwrap_err();
        assert!(err.contains("did you mean --metrics-every?"), "{err}");

        // A far-off option errors without a bogus suggestion.
        let d = Args::parse(&argv("x --zzzzzzzz 1")).unwrap();
        let err = d.validate("x", allowed).unwrap_err();
        assert!(err.contains("unknown option --zzzzzzzz"), "{err}");
        assert!(!err.contains("did you mean"), "{err}");
    }
}
