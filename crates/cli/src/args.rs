//! A tiny `--flag value` argument parser (no external dependencies).

use std::collections::HashMap;

/// Options that are switches, not `--key value` pairs: their presence
/// alone means "on", so the parser must not consume the next token.
const BOOL_FLAGS: &[&str] = &["trace"];

/// Parsed command line: the subcommand plus `--key value` options.
#[derive(Debug, Clone, Default)]
pub struct Args {
    /// The subcommand (first non-flag argument).
    pub command: Option<String>,
    options: HashMap<String, String>,
}

impl Args {
    /// Parses `argv` (without the program name).
    ///
    /// Every option must be of the form `--key value` — except the known
    /// boolean switches ([`BOOL_FLAGS`]), which take no value. A bare
    /// valued `--key` at the end of the line or followed by another flag
    /// is an error.
    pub fn parse(argv: &[String]) -> Result<Self, String> {
        let mut out = Args::default();
        let mut it = argv.iter().peekable();
        while let Some(arg) = it.next() {
            if let Some(key) = arg.strip_prefix("--") {
                if BOOL_FLAGS.contains(&key) {
                    out.options.insert(key.to_string(), "true".to_string());
                    continue;
                }
                let value = it
                    .next()
                    .filter(|v| !v.starts_with("--"))
                    .ok_or_else(|| format!("option --{key} needs a value"))?;
                out.options.insert(key.to_string(), value.clone());
            } else if out.command.is_none() {
                out.command = Some(arg.clone());
            } else {
                return Err(format!("unexpected argument {arg:?}"));
            }
        }
        Ok(out)
    }

    /// `true` when a boolean switch was present on the command line.
    pub fn flag(&self, key: &str) -> bool {
        self.options.contains_key(key)
    }

    /// A required string option.
    pub fn required(&self, key: &str) -> Result<&str, String> {
        self.options
            .get(key)
            .map(String::as_str)
            .ok_or_else(|| format!("missing required option --{key}"))
    }

    /// An optional string option.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// A required numeric option.
    pub fn required_usize(&self, key: &str) -> Result<usize, String> {
        self.required(key)?
            .parse()
            .map_err(|_| format!("--{key} expects an integer"))
    }

    /// An optional numeric option with a default.
    pub fn usize_or(&self, key: &str, default: usize) -> Result<usize, String> {
        match self.options.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("--{key} expects an integer")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_command_and_options() {
        let a = Args::parse(&argv("density --file x.csv --window 150")).unwrap();
        assert_eq!(a.command.as_deref(), Some("density"));
        assert_eq!(a.required("file").unwrap(), "x.csv");
        assert_eq!(a.required_usize("window").unwrap(), 150);
    }

    #[test]
    fn missing_value_is_an_error() {
        assert!(Args::parse(&argv("rra --file")).is_err());
        assert!(Args::parse(&argv("rra --file --window 10")).is_err());
    }

    #[test]
    fn unexpected_positional_rejected() {
        assert!(Args::parse(&argv("rra extra")).is_err());
    }

    #[test]
    fn defaults_and_missing() {
        let a = Args::parse(&argv("x")).unwrap();
        assert_eq!(a.usize_or("top", 3).unwrap(), 3);
        assert!(a.required("file").is_err());
        assert!(a.get("nothing").is_none());
    }

    #[test]
    fn boolean_flag_takes_no_value() {
        let a = Args::parse(&argv("density --trace --file x.csv")).unwrap();
        assert!(a.flag("trace"));
        assert_eq!(a.required("file").unwrap(), "x.csv");
        // Absent flag is simply false; valued options never read as flags
        // they weren't given.
        let b = Args::parse(&argv("density --file x.csv")).unwrap();
        assert!(!b.flag("trace"));
        // Last position works too — nothing to consume.
        assert!(Args::parse(&argv("rra --trace")).unwrap().flag("trace"));
    }

    #[test]
    fn bad_integer() {
        let a = Args::parse(&argv("x --top abc")).unwrap();
        assert!(a.usize_or("top", 1).is_err());
        assert!(a.required_usize("top").is_err());
    }
}
