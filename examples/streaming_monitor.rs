//! Online anomaly monitoring — the paper's §7 future-work direction in
//! action: points arrive one at a time, and the detector raises an alert
//! as soon as an incompressible region matures. With
//! `metrics_every(2000)` the detector also flushes a metrics snapshot
//! every 2000 points, so a long-running monitor yields a time-resolved
//! metric trajectory (grammar churn, surviving tokens) instead of one
//! final record.
//!
//! ```text
//! cargo run --release --example streaming_monitor
//! ```

use grammarviz::core::obs::LocalRecorder;
use grammarviz::core::{PipelineConfig, StreamingDetector};
use grammarviz::timeseries::Interval;

fn main() {
    // A telemetry-like stream: regular cycles with a fault at t=6200.
    let fault = Interval::new(6200, 6320);
    let signal = |t: usize| -> f64 {
        if fault.contains(t) {
            0.1 * ((t - fault.start) as f64 / 8.0).sin() // flat-ish fault
        } else {
            let phase = (t % 200) as f64 / 200.0;
            if phase < 0.5 {
                1.0 + 0.05 * (phase * 40.0).sin()
            } else {
                0.05 * (phase * 30.0).sin()
            }
        }
    };

    let config = PipelineConfig::new(100, 4, 4).expect("valid parameters");
    let mut detector =
        StreamingDetector::with_recorder(config, LocalRecorder::new()).metrics_every(2000);

    println!("streaming 10,000 points; fault injected at {fault}\n");
    let mut first_alert: Option<(usize, Interval)> = None;
    for t in 0..10_000usize {
        detector.push(signal(t)).expect("finite signal");
        // Check periodically, like a monitoring loop would.
        if t % 250 == 0 && t > 0 {
            let alerts = detector.alerts(0, 150);
            if let Some(alert) = alerts.iter().find(|a| a.overlaps(&fault)) {
                if first_alert.is_none() {
                    first_alert = Some((t, *alert));
                    println!("t={t:>6}: ALERT {alert} — fault detected");
                }
            }
        }
        if t % 2000 == 0 && t > 0 {
            println!(
                "t={t:>6}: {} tokens, grammar over {} points so far",
                detector.num_tokens(),
                detector.len()
            );
        }
    }

    match first_alert {
        Some((t, alert)) => {
            let delay = t.saturating_sub(fault.end);
            println!(
                "\nfault {fault} alerted at t={t} (≈{delay} points after it ended — \
                 maturity horizon + check period)"
            );
            println!(
                "alert interval {alert} overlaps the fault: {}",
                alert.overlaps(&fault)
            );
        }
        None => println!("\nno alert raised — unexpected for this stream"),
    }

    // The periodic metric trajectory: one schema-versioned JSONL record per flush
    // (the CLI equivalent is `gv stream --metrics-every N --metrics PATH`).
    println!(
        "\nmetric trajectory ({} snapshots):",
        detector.snapshots().len()
    );
    for snapshot in detector.snapshots() {
        println!("  {}", snapshot.to_jsonl());
    }
}
