//! Online anomaly monitoring — the paper's §7 future-work direction in
//! action: points arrive one at a time, the detector raises an alert as
//! soon as an incompressible region matures, and the live-telemetry stack
//! turns the periodic metric flushes into per-interval `window` records
//! and SLO `health` verdicts (the library equivalent of `gv monitor`).
//!
//! ```text
//! cargo run --release --example streaming_monitor
//! ```

use grammarviz::core::obs::{HealthEngine, HealthRule, LedgerRecord, WindowedAggregator};
use grammarviz::core::{PipelineConfig, StreamingDetector};
use grammarviz::timeseries::Interval;

fn main() {
    // A telemetry-like stream: regular cycles with a fault at t=6200.
    let fault = Interval::new(6200, 6320);
    let signal = |t: usize| -> f64 {
        if fault.contains(t) {
            0.1 * ((t - fault.start) as f64 / 8.0).sin() // flat-ish fault
        } else {
            let phase = (t % 200) as f64 / 200.0;
            if phase < 0.5 {
                1.0 + 0.05 * (phase * 40.0).sin()
            } else {
                0.05 * (phase * 30.0).sin()
            }
        }
    };

    let config = PipelineConfig::new(100, 4, 4).expect("valid parameters");
    let mut detector = StreamingDetector::new(config).metrics_every(2000);

    // The monitoring stack: difference every cumulative snapshot into a
    // per-interval window, and grade each window against two SLOs. The
    // tight discord budget breaches when the fault alerts.
    let mut aggregator = WindowedAggregator::new();
    let mut health = HealthEngine::new(vec![
        HealthRule::MaxDiscordRate(0.0001),
        HealthRule::StaleStream(3),
    ]);

    println!("streaming 10,000 points; fault injected at {fault}\n");
    let mut reported: Vec<Interval> = Vec::new();
    let mut first_alert: Option<(usize, Interval)> = None;
    for t in 0..10_000usize {
        detector.push(signal(t)).expect("finite signal");
        // Check periodically, like a monitoring loop would.
        if t % 250 == 0 && t > 0 {
            for alert in detector.alerts(0, 150) {
                if !reported.iter().any(|r| r.overlaps(&alert)) {
                    reported.push(alert);
                }
                if first_alert.is_none() && alert.overlaps(&fault) {
                    first_alert = Some((t, alert));
                    println!("t={t:>6}: ALERT {alert} — fault detected");
                }
            }
        }
        if t % 2000 == 0 && t > 0 {
            println!(
                "t={t:>6}: {} tokens, grammar over {} points so far",
                detector.num_tokens(),
                detector.len()
            );
        }
    }
    // Terminal flush: never drop the final partial interval.
    detector.flush_now();

    match first_alert {
        Some((t, alert)) => {
            let delay = t.saturating_sub(fault.end);
            println!(
                "\nfault {fault} alerted at t={t} (≈{delay} points after it ended — \
                 maturity horizon + check period)"
            );
            println!(
                "alert interval {alert} overlaps the fault: {}",
                alert.overlaps(&fault)
            );
        }
        None => println!("\nno alert raised — unexpected for this stream"),
    }

    // Replay the cumulative snapshot trajectory through the aggregator:
    // one deterministic `window` record per flush interval, plus a
    // `health` record whenever the SLO verdict changes (the CLI
    // equivalent is `gv monitor --interval N --rules FILE`).
    println!("\nwindow + health records:");
    for snapshot in detector.take_snapshots() {
        let seen = snapshot.params.iter().find(|(k, _)| k == "seen");
        let points = seen.map(|(_, v)| *v).unwrap_or(0);
        let discords = reported.iter().filter(|r| (r.end as u64) <= points).count() as u64;
        let window = aggregator.observe(&snapshot, points, discords, 0);
        println!("  {}", window.to_jsonl());
        let (report, transition) = health.evaluate(window);
        if transition {
            println!("  {}", report.to_jsonl());
        }
    }

    // One run-ledger line captures the session's provenance: config and
    // input digests plus a digest over what was found — `gv check
    // --ledger` compares these across git SHAs to catch result drift.
    let mut config_fp = grammarviz::core::obs::Fingerprint::new();
    config_fp.write_str("streaming_monitor").write_u64(100);
    let mut result_fp = grammarviz::core::obs::Fingerprint::new();
    for alert in &reported {
        result_fp
            .write_u64(alert.start as u64)
            .write_u64(alert.len() as u64);
    }
    let ledger = LedgerRecord {
        label: "streaming_monitor".to_string(),
        git_sha: grammarviz::core::obs::git_sha(),
        config_fp: config_fp.finish(),
        input_digest: grammarviz::core::obs::digest_series(detector.values()),
        points: detector.len() as u64,
        wall_ns: 0,
        k: reported.len() as u64,
        result_digest: result_fp.finish(),
    };
    println!("\nledger record:\n  {}", ledger.to_jsonl());
}
