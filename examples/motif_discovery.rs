//! Variable-length motif discovery — the inverse of anomaly detection
//! (paper §3.5): the same grammar whose rare symbols flag anomalies makes
//! its frequent rules the recurrent patterns.
//!
//! ```text
//! cargo run --release --example motif_discovery
//! ```

use grammarviz::core::{motifs, prune::prune, viz, AnomalyPipeline, PipelineConfig};
use grammarviz::datasets::power::power_demand;

fn main() {
    let data = power_demand();
    let values = data.series.values();
    println!("{}: {} points", data.series.name(), values.len());

    let pipeline = AnomalyPipeline::new(PipelineConfig::new(750, 6, 3).unwrap());
    let model = pipeline.model(values).expect("pipeline runs");
    println!(
        "grammar: {} rules over {} tokens (size {})\n",
        model.grammar.num_rules(),
        model.num_tokens(),
        model.grammar.grammar_size()
    );

    // Top recurring patterns: in a year of office power demand these are,
    // unsurprisingly, weeks and week fragments.
    let found = motifs(&model, 5);
    println!("top-5 motifs (most frequent variable-length patterns):");
    for (i, m) in found.iter().enumerate() {
        println!(
            "  #{i}: {} occurrences, length {}..{} (mean {:.0})",
            m.count(),
            m.min_length,
            m.max_length,
            m.mean_length
        );
        let first = m.occurrences[0];
        println!(
            "      first at {}: {}",
            first,
            viz::sparkline(&values[first.start..first.end], 60)
        );
    }

    // Rule pruning (the GrammarViz 2.0 "Prune rules" feature): a minimal
    // rule subset with the same coverage, for human consumption.
    let pruned = prune(&model);
    println!(
        "\nrule pruning: {} rules → {} rules with identical point coverage ({} pts)",
        pruned.rules_before,
        pruned.rules.len(),
        pruned.covered_after()
    );
    for r in pruned.rules.iter().take(5) {
        println!(
            "  {} contributes {} new points over {} occurrences",
            r.rule,
            r.contribution,
            r.occurrences.len()
        );
    }
}
