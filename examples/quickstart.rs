//! Quickstart: find a variable-length anomaly in a synthetic signal.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds a repetitive signal with one planted distortion, then runs both
//! detectors from the paper: the linear-time rule-density curve and the
//! exact RRA discord search.

use grammarviz::core::{viz, AnomalyPipeline, PipelineConfig};

fn main() {
    // A repetitive sine with a planted flat distortion at 1500..1600.
    let mut values: Vec<f64> = (0..3000).map(|i| (i as f64 / 25.0).sin()).collect();
    for (i, v) in values[1500..1600].iter_mut().enumerate() {
        *v = 0.3 * (i as f64 / 6.0).cos();
    }

    // The only configuration is the SAX triple (window, PAA, alphabet).
    // The window is just a "seed" size — reported anomalies can be shorter
    // or longer.
    let config = PipelineConfig::new(100, 5, 4).expect("valid SAX parameters");
    let pipeline = AnomalyPipeline::new(config);

    // 1. Approximate, linear-time: the rule density curve.
    let density = pipeline
        .density_anomalies(&values, 2)
        .expect("series long enough");
    println!("signal : {}", viz::sparkline(&values, 100));
    println!("density: {}", viz::density_strip(&density.curve, 100));
    println!("\nrule-density anomalies (lowest coverage first):");
    print!("{}", viz::density_table(&density));

    // 2. Exact, variable length: RRA discords.
    let rra = pipeline
        .rra_discords(&values, 2)
        .expect("series long enough");
    println!("\nRRA discords (largest NN distance first):");
    print!("{}", viz::rra_table(&rra));
    println!(
        "\nsearch cost: {} distance calls over {} grammar candidates",
        rra.stats.distance_calls, rra.num_candidates
    );

    let top = &rra.discords[0];
    assert!(
        top.position < 1650 && top.position + top.length > 1450,
        "expected the discord to land on the planted distortion"
    );
    println!("\ntop discord overlaps the planted distortion at 1500..1600 ✓");
}
