//! Discretization-parameter robustness — a compact version of the
//! paper's Figure 10 study: sweep (window, PAA, alphabet) combinations
//! and count how often each detector recovers a known anomaly.
//!
//! ```text
//! cargo run --release --example parameter_sweep
//! ```

use grammarviz::core::sweep::{run, success_counts, SweepGrid};
use grammarviz::datasets::ecg::{ecg0606, EcgParams};

fn main() {
    let data = ecg0606(EcgParams::default());
    let truth = data.anomalies[0].interval;

    // A small grid around the paper's ranges (full Figure 10 sweep lives in
    // `cargo run -p gv-bench --release --bin fig10_param_sweep`).
    let grid = SweepGrid {
        windows: vec![60, 90, 120, 180, 240, 300],
        paas: vec![3, 4, 6, 8],
        alphabets: vec![3, 4, 6],
    };
    println!(
        "sweeping {} parameter combinations on {}",
        grid.len(),
        data.series.name()
    );

    let points = run(data.series.values(), truth, 120, &grid);
    let (density_hits, rra_hits) = success_counts(&points);
    println!("\nevaluated : {}", points.len());
    println!("density OK: {density_hits}");
    println!("RRA OK    : {rra_hits}");

    println!("\nper-combination detail (W, P, A → density / rra, grammar size):");
    for p in &points {
        println!(
            "  ({:>3},{:>2},{:>2}) → {} / {}   size {:>4}  approx-dist {:.2}",
            p.window,
            p.paa,
            p.alphabet,
            if p.density_hit { "ok " } else { "-- " },
            if p.rra_hit { "ok " } else { "-- " },
            p.grammar_size,
            p.approximation_distance
        );
    }

    assert!(
        rra_hits >= density_hits,
        "RRA should be at least as robust as density"
    );
    println!("\nRRA's success region is at least as large as the density curve's ✓");
}
