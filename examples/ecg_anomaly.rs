//! ECG anomaly discovery — the paper's Figure 2 scenario as an
//! application: locate one subtle anomalous heartbeat in an ECG record
//! without knowing the anomaly's length.
//!
//! ```text
//! cargo run --release --example ecg_anomaly
//! ```

use grammarviz::core::{viz, AnomalyPipeline, PipelineConfig};
use grammarviz::datasets::ecg::{ecg0606, EcgParams};
use grammarviz::timeseries::Interval;

fn main() {
    let data = ecg0606(EcgParams::default());
    let values = data.series.values();
    println!(
        "{}: {} samples, ground truth {} ({})",
        data.series.name(),
        values.len(),
        data.anomalies[0].interval,
        data.anomalies[0].label
    );

    // The paper picks the window from context: roughly one heartbeat.
    let pipeline = AnomalyPipeline::new(PipelineConfig::new(120, 4, 4).unwrap());

    let density = pipeline.density_anomalies(values, 1).unwrap();
    let rra = pipeline.rra_discords(values, 1).unwrap();

    let width = 100;
    println!("\nsignal : {}", viz::sparkline(values, width));
    println!("density: {}", viz::density_strip(&density.curve, width));
    let truth: Vec<Interval> = data.anomalies.iter().map(|a| a.interval).collect();
    println!("truth  : {}", viz::marker_row(values.len(), &truth, width));

    let d_iv = density.anomalies[0].interval;
    let r_iv = rra.discords[0].interval();
    println!(
        "\ndensity minimum : {d_iv} (min coverage {})",
        density.anomalies[0].min_density
    );
    println!(
        "best RRA discord: {r_iv} (length {}, NN distance {:.4})",
        r_iv.len(),
        rra.discords[0].distance
    );

    // Both detectors should land on (or next to) the anomalous beat.
    let hit = |iv: &Interval| data.is_hit_with_slack(iv, 120);
    println!(
        "\ndensity hits ground truth: {}   RRA hits ground truth: {}",
        hit(&d_iv),
        hit(&r_iv)
    );
    println!(
        "RRA cost: {} distance calls ({} abandoned early) over {} candidates",
        rra.stats.distance_calls, rra.stats.early_abandoned, rra.num_candidates
    );
}
