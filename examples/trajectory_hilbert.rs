//! Spatial-trajectory anomaly discovery via the Hilbert space-filling
//! curve — the paper's §5.1 case study: a GPS commute track is reduced to
//! a scalar series, then mined for route anomalies of unknown kind.
//!
//! ```text
//! cargo run --release --example trajectory_hilbert
//! ```

use grammarviz::core::{viz, AnomalyPipeline, PipelineConfig};
use grammarviz::datasets::trajectory::daily_commute;

fn main() {
    let commute = daily_commute();
    let values = commute.dataset.series.values();
    let bbox = commute.mapper.bbox();
    println!(
        "commute track: {} GPS points over [{:.0},{:.0}]x[{:.0},{:.0}], \
         Hilbert order {} ({} cells)",
        commute.points.len(),
        bbox.min_x,
        bbox.max_x,
        bbox.min_y,
        bbox.max_y,
        commute.mapper.curve().order(),
        commute.mapper.curve().cells()
    );
    println!("transformed series: {}", viz::sparkline(values, 110));

    let pipeline = AnomalyPipeline::new(PipelineConfig::new(350, 15, 4).unwrap());

    // The density curve excels at *short* anomalies (the one-off detour).
    let density = pipeline.density_anomalies(values, 1).unwrap();
    let detour = density.anomalies[0].interval;
    println!(
        "\ndensity minimum {} (coverage {}) — candidate detour",
        detour, density.anomalies[0].min_density
    );

    // RRA excels at subtler shape anomalies (the partial-GPS-fix segment).
    let rra = pipeline.rra_discords(values, 2).unwrap();
    for d in &rra.discords {
        let iv = d.interval();
        // Map the discord back to map coordinates through the point list.
        let pts = &commute.points[iv.start..iv.end.min(commute.points.len())];
        let (mut cx, mut cy) = (0.0, 0.0);
        for &(x, y) in pts {
            cx += x;
            cy += y;
        }
        let n = pts.len().max(1) as f64;
        println!(
            "RRA rank {}: {} (len {}, d={:.4}) — segment centred near ({:.1}, {:.1})",
            d.rank,
            iv,
            iv.len(),
            d.distance,
            cx / n,
            cy / n
        );
    }

    println!("\nground truth:");
    for a in &commute.dataset.anomalies {
        println!("  {} — {}", a.interval, a.label);
    }
    let gps = commute
        .dataset
        .anomalies
        .iter()
        .find(|a| a.label.contains("GPS"))
        .unwrap();
    let det = commute
        .dataset
        .anomalies
        .iter()
        .find(|a| a.label.contains("detour"))
        .unwrap();
    println!(
        "\ndensity found the detour: {}   RRA found the GPS-fix segment: {}",
        detour.overlaps(&det.interval),
        rra.discords
            .iter()
            .any(|d| d.interval().overlaps(&gps.interval))
    );
}
