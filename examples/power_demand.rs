//! Holiday discovery in a year of facility power demand — the paper's
//! Figures 3–4 scenario: the three most unusual weeks of the year are the
//! weeks interrupted by state holidays, discovered without specifying any
//! anomaly length.
//!
//! ```text
//! cargo run --release --example power_demand
//! ```

use grammarviz::core::{viz, AnomalyPipeline, PipelineConfig};
use grammarviz::datasets::power::{power_demand, SAMPLES_PER_DAY};

fn main() {
    let data = power_demand();
    let values = data.series.values();
    println!(
        "{}: {} samples (one year at 15-minute resolution)",
        data.series.name(),
        values.len()
    );
    println!("planted holidays:");
    for a in &data.anomalies {
        println!(
            "  day {:>3} — {}",
            a.interval.start / SAMPLES_PER_DAY,
            a.label
        );
    }

    // Window ≈ one week: the paper's context-driven choice.
    let pipeline = AnomalyPipeline::new(PipelineConfig::new(750, 6, 3).unwrap());
    let rra = pipeline.rra_discords(values, 3).unwrap();

    println!("\nsignal : {}", viz::sparkline(values, 110));

    println!("\nthe three most unusual weeks of the year:");
    for d in &rra.discords {
        let iv = d.interval();
        let covered: Vec<&str> = data
            .anomalies
            .iter()
            .filter(|a| a.interval.overlaps(&iv))
            .map(|a| a.label.as_str())
            .collect();
        println!(
            "  rank {}: {} (len {}, NN distance {:.4}) — {}",
            d.rank,
            iv,
            iv.len(),
            d.distance,
            if covered.is_empty() {
                "?".to_string()
            } else {
                covered.join(", ")
            }
        );
        println!(
            "           {}",
            viz::sparkline(&values[iv.start..iv.end], 80)
        );
    }

    let all_holiday_weeks = rra
        .discords
        .iter()
        .all(|d| data.hit(&d.interval()).is_some());
    println!("\nall ranked discords are holiday weeks: {all_holiday_weeks}");
}
