//! End-to-end integration: on every (laptop-sized) evaluation dataset the
//! pipeline must recover the planted ground-truth anomaly with the
//! paper's own discretization parameters.

use grammarviz::core::{AnomalyPipeline, PipelineConfig};
use grammarviz::datasets::{ecg, power, respiration, telemetry, trajectory, video, Dataset};
use grammarviz::timeseries::Interval;

/// Runs both detectors and asserts the ground truth is recovered.
///
/// * RRA: some top-3 discord overlaps a planted anomaly (top-1 on most
///   datasets, but ties happen);
/// * density: some top-3 minimum overlaps a planted anomaly.
fn assert_recovers(data: &Dataset, window: usize, paa: usize, alphabet: usize) {
    let values = data.series.values();
    let pipeline = AnomalyPipeline::new(PipelineConfig::new(window, paa, alphabet).unwrap());
    let slack = window;

    let rra = pipeline.rra_discords(values, 3).unwrap();
    assert!(
        rra.discords
            .iter()
            .any(|d| data.is_hit_with_slack(&d.interval(), slack)),
        "{}: no RRA top-3 discord hits the truth (got {:?})",
        data.series.name(),
        rra.discords
            .iter()
            .map(|d| d.interval())
            .collect::<Vec<_>>()
    );

    let density = pipeline.density_anomalies(values, 3).unwrap();
    assert!(
        density
            .anomalies
            .iter()
            .any(|a| data.is_hit_with_slack(&a.interval, slack)),
        "{}: no density top-3 minimum hits the truth (got {:?})",
        data.series.name(),
        density
            .anomalies
            .iter()
            .map(|a| a.interval)
            .collect::<Vec<_>>()
    );
}

#[test]
fn ecg0606_recovers_the_st_anomaly() {
    let data = ecg::ecg0606(ecg::EcgParams::default());
    assert_recovers(&data, 120, 4, 4);
}

#[test]
fn ecg308_recovers_the_pvc() {
    let data = ecg::ecg_record("ECG 308 (synthetic)", 5_400, 300, 1, 0x308);
    assert_recovers(&data, 300, 4, 4);
}

#[test]
fn respiration_recovers_the_apnea() {
    assert_recovers(&respiration::nprs43(), 128, 5, 4);
}

#[test]
fn video_recovers_both_gestures() {
    let data = video::video_gun();
    assert_recovers(&data, 150, 5, 3);
    // Stronger claim: the top-2 RRA discords are exactly the two planted
    // anomalous repetitions.
    let pipeline = AnomalyPipeline::new(PipelineConfig::new(150, 5, 3).unwrap());
    let rra = pipeline.rra_discords(data.series.values(), 2).unwrap();
    let found: Vec<Interval> = rra.discords.iter().map(|d| d.interval()).collect();
    for anomaly in &data.anomalies {
        assert!(
            found.iter().any(|f| f.overlaps(&anomaly.interval)),
            "missing {}",
            anomaly.label
        );
    }
}

#[test]
fn telemetry_tek_variants_recover() {
    assert_recovers(&telemetry::tek14(), 128, 4, 4);
    assert_recovers(&telemetry::tek16(), 128, 4, 4);
    assert_recovers(&telemetry::tek17(), 128, 4, 4);
}

#[test]
fn power_demand_top_discords_are_holiday_weeks() {
    let data = power::power_demand();
    let pipeline = AnomalyPipeline::new(PipelineConfig::new(750, 6, 3).unwrap());
    let rra = pipeline.rra_discords(data.series.values(), 3).unwrap();
    assert_eq!(rra.discords.len(), 3);
    for d in &rra.discords {
        assert!(
            data.hit(&d.interval()).is_some(),
            "rank {} discord {} is not a holiday week",
            d.rank,
            d.interval()
        );
    }
}

#[test]
fn trajectory_detour_and_gps_loss() {
    let commute = trajectory::daily_commute();
    let values = commute.dataset.series.values();
    let pipeline = AnomalyPipeline::new(PipelineConfig::new(350, 15, 4).unwrap());

    let detour = commute
        .dataset
        .anomalies
        .iter()
        .find(|a| a.label.contains("detour"))
        .unwrap();
    let gps = commute
        .dataset
        .anomalies
        .iter()
        .find(|a| a.label.contains("GPS"))
        .unwrap();

    // Density's global minimum is the one-off detour (Fig. 7).
    let density = pipeline.density_anomalies(values, 1).unwrap();
    assert!(
        density.anomalies[0].interval.overlaps(&detour.interval),
        "density minimum {} is not the detour {}",
        density.anomalies[0].interval,
        detour.interval
    );

    // RRA's best discord is the partial-GPS-fix segment (Fig. 7).
    let rra = pipeline.rra_discords(values, 1).unwrap();
    assert!(
        rra.discords[0].interval().overlaps(&gps.interval),
        "RRA best {} is not the GPS-loss segment {}",
        rra.discords[0].interval(),
        gps.interval
    );
}

/// The two ~550k-point MIT-BIH records, scaled for CI. Slow in debug —
/// run with `cargo test --release -- --ignored`.
#[test]
#[ignore = "slow: run with --release -- --ignored"]
fn large_ecg_records_recover() {
    for (name, seed) in [("ECG 300", 0x300u64), ("ECG 318", 0x318)] {
        let data = ecg::ecg_record(name, 60_000, 300, 3, seed);
        assert_recovers(&data, 300, 4, 4);
    }
}
