//! The execution engine's headline guarantee, end to end through the
//! facade: parallel RRA returns **bit-identical** ranked discords for any
//! thread count, and the event ledger keeps balancing under parallel
//! merge.

use grammarviz::core::{
    AnomalyPipeline, Detector, EngineConfig, PipelineConfig, RraDetector, SeriesView, Workspace,
};
use grammarviz::obs::{CollectingRecorder, EventKind, NoopRecorder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn planted_series() -> Vec<f64> {
    let mut v: Vec<f64> = (0..3000).map(|i| (i as f64 / 25.0).sin()).collect();
    for (i, x) in v[1500..1600].iter_mut().enumerate() {
        *x = 0.3 * (i as f64 / 6.0).cos();
    }
    v
}

/// A noisy periodic series with one randomized planted bump.
fn random_series(seed: u64, len: usize) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let period = rng.gen_range(12.0..40.0);
    let mut v: Vec<f64> = (0..len)
        .map(|i| (i as f64 / period).sin() + 0.05 * ((i * 7919 + seed as usize) % 97) as f64 / 97.0)
        .collect();
    let at = rng.gen_range(len / 4..3 * len / 4);
    let blen = rng.gen_range(8..24);
    for i in 0..blen.min(len - at) {
        v[at + i] +=
            rng.gen_range(0.5..1.5) * (std::f64::consts::PI * i as f64 / blen as f64).sin();
    }
    v
}

fn ranked_key(v: &[f64], config: &PipelineConfig, threads: usize) -> Vec<(usize, usize, u64)> {
    let detector = RraDetector::new(config.clone(), 3)
        .with_engine(EngineConfig::sequential().with_threads(threads));
    let report = detector
        .detect(&SeriesView::new(v), &mut Workspace::new(), &NoopRecorder)
        .unwrap();
    report
        .anomalies
        .iter()
        .map(|a| (a.interval.start, a.interval.len(), a.score.to_bits()))
        .collect()
}

#[test]
fn parallel_rra_is_bit_identical_on_planted_series() {
    let v = planted_series();
    let config = PipelineConfig::new(100, 5, 4).unwrap();
    let sequential = ranked_key(&v, &config, 1);
    assert!(!sequential.is_empty());
    for threads in [2, 4, 8] {
        assert_eq!(
            ranked_key(&v, &config, threads),
            sequential,
            "threads={threads}"
        );
    }
}

#[test]
fn parallel_rra_is_bit_identical_on_random_series() {
    for seed in 0..4u64 {
        let v = random_series(seed + 300, 1500);
        let config = PipelineConfig::new(60, 4, 4).unwrap().with_seed(seed);
        let sequential = ranked_key(&v, &config, 1);
        for threads in [2, 4, 8] {
            assert_eq!(
                ranked_key(&v, &config, threads),
                sequential,
                "seed={seed} threads={threads}"
            );
        }
    }
}

#[test]
fn pipeline_engine_config_is_thread_count_invariant() {
    let v = planted_series();
    let config = PipelineConfig::new(100, 5, 4).unwrap();
    let sequential = AnomalyPipeline::new(config.clone())
        .with_engine(EngineConfig::sequential())
        .rra_discords(&v, 3)
        .unwrap();
    let parallel = AnomalyPipeline::new(config)
        .with_engine(EngineConfig::sequential().with_threads(4))
        .rra_discords(&v, 3)
        .unwrap();
    assert_eq!(sequential.discords.len(), parallel.discords.len());
    for (s, p) in sequential.discords.iter().zip(&parallel.discords) {
        assert_eq!(s.position, p.position);
        assert_eq!(s.length, p.length);
        assert_eq!(s.distance.to_bits(), p.distance.to_bits());
    }
    assert_eq!(sequential.num_candidates, parallel.num_candidates);
}

#[test]
fn event_ledger_balances_under_parallel_search() {
    // Every candidate is wholly processed by one worker with its own
    // recorder, so the per-candidate Pruned/Completed events must still
    // sum to the run's distance-call total after the merge — the same
    // invariant the sequential ledger guarantees.
    let v = planted_series();
    let config = PipelineConfig::new(100, 5, 4).unwrap();
    for threads in [1, 4] {
        let recorder = CollectingRecorder::new();
        let detector = RraDetector::new(config.clone(), 2)
            .with_engine(EngineConfig::sequential().with_threads(threads));
        let report = detector
            .detect(&SeriesView::new(&v), &mut Workspace::new(), &recorder)
            .unwrap();
        let (_, dropped) = recorder.events_recorded_dropped();
        assert_eq!(dropped, 0, "ring must keep every event on this fixture");
        let from_events: u64 = recorder
            .events_vec()
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Pruned | EventKind::Completed))
            .map(|e| e.calls)
            .sum();
        assert_eq!(
            from_events, report.stats.distance_calls,
            "threads={threads}: ledger out of balance"
        );
        assert!(report.stats.distance_calls > 0);
    }
}

/// The span-tree determinism contract: every worker's rra-inner span is
/// grafted under the same `(parent, stage)` key at merge time, so the
/// exported tree — paths, depths, and span counts — is bit-identical for
/// any thread count. (Nanos are wall-clock and machine-dependent;
/// `distance_calls`-style counters are covered above. Span *counts* are
/// thread-invariant because each candidate is scanned exactly once.)
#[test]
fn span_tree_is_identical_across_thread_counts() {
    let v = planted_series();
    let config = PipelineConfig::new(100, 5, 4).unwrap();
    let tree_shape = |threads: usize| -> Vec<(String, usize, u64)> {
        let recorder = CollectingRecorder::new();
        let detector = RraDetector::new(config.clone(), 3)
            .with_engine(EngineConfig::sequential().with_threads(threads));
        detector
            .detect(&SeriesView::new(&v), &mut Workspace::new(), &recorder)
            .unwrap();
        recorder
            .snapshot("span-shape")
            .spans
            .spans()
            .iter()
            .map(|s| (s.path.clone(), s.depth, s.count))
            .collect()
    };
    let sequential = tree_shape(1);
    assert!(
        sequential.iter().any(|(p, _, _)| p == "detect"),
        "{sequential:?}"
    );
    assert!(
        sequential
            .iter()
            .any(|(p, _, _)| p == "detect;rra-outer;rra-inner"),
        "{sequential:?}"
    );
    for threads in [2, 4, 8] {
        assert_eq!(tree_shape(threads), sequential, "threads={threads}");
    }
}

#[test]
fn workspace_capacities_freeze_after_warmup() {
    let v = planted_series();
    let config = PipelineConfig::new(100, 5, 4).unwrap();
    let detector = RraDetector::new(config, 2).with_engine(EngineConfig::sequential());
    let mut ws = Workspace::new();
    let series = SeriesView::new(&v);
    let first = detector.detect(&series, &mut ws, &NoopRecorder).unwrap();
    let sig = ws.capacity_signature();
    for _ in 0..3 {
        let again = detector.detect(&series, &mut ws, &NoopRecorder).unwrap();
        assert_eq!(
            first.anomalies[0].score.to_bits(),
            again.anomalies[0].score.to_bits()
        );
        assert_eq!(sig, ws.capacity_signature(), "workspace buffers grew");
    }
}
