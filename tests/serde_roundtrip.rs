//! Serde round-trips for the public result types: downstream tooling can
//! persist experiment outputs and read them back losslessly.

use grammarviz::core::{motifs, AnomalyPipeline, PipelineConfig, RuleInterval};
use grammarviz::discord::{DiscordRecord, SearchStats};
use grammarviz::sax::SaxWord;
use grammarviz::sequitur::{RuleId, RuleOccurrence, Symbol};
use grammarviz::timeseries::Interval;

fn roundtrip<T>(value: &T) -> T
where
    T: serde::Serialize + serde::de::DeserializeOwned,
{
    let json = serde_json::to_string(value).expect("serializes");
    serde_json::from_str(&json).expect("deserializes")
}

#[test]
fn interval_roundtrip() {
    let iv = Interval::new(12, 345);
    assert_eq!(roundtrip(&iv), iv);
}

#[test]
fn discord_record_roundtrip() {
    let d = DiscordRecord {
        position: 42,
        length: 100,
        distance: 1.2345,
        rank: 2,
    };
    assert_eq!(roundtrip(&d), d);
    let s = SearchStats {
        distance_calls: 10,
        early_abandoned: 3,
        candidates_pruned: 2,
        candidates_completed: 5,
    };
    assert_eq!(roundtrip(&s), s);
}

#[test]
fn grammar_types_roundtrip() {
    let occ = RuleOccurrence {
        rule: RuleId(3),
        token_start: 7,
        token_len: 4,
    };
    assert_eq!(roundtrip(&occ), occ);
    let sym = Symbol::Rule(RuleId(9));
    assert_eq!(roundtrip(&sym), sym);
    let word = SaxWord::from_letters("acbd").unwrap();
    assert_eq!(roundtrip(&word), word);
}

#[test]
fn pipeline_outputs_roundtrip() {
    let mut values: Vec<f64> = (0..1500).map(|i| (i as f64 / 18.0).sin()).collect();
    for (i, v) in values[700..760].iter_mut().enumerate() {
        *v = 0.2 * (i as f64 / 4.0).cos();
    }
    let pipeline = AnomalyPipeline::new(PipelineConfig::new(80, 4, 4).unwrap());

    let density = pipeline.density_anomalies(&values, 2).unwrap();
    for a in &density.anomalies {
        assert_eq!(&roundtrip(a), a);
    }

    let model = pipeline.model(&values).unwrap();
    for m in motifs(&model, 3) {
        assert_eq!(roundtrip(&m), m);
    }
    for c in grammarviz::core::rule_intervals(&model).into_iter().take(5) {
        let back: RuleInterval = roundtrip(&c);
        assert_eq!(back, c);
    }
}

#[test]
fn evaluation_roundtrip() {
    let e = grammarviz::core::evaluation::evaluate(
        &[Interval::new(10, 20)],
        &[Interval::new(12, 30)],
        0,
        100,
    );
    assert_eq!(roundtrip(&e), e);
}
