//! Exactness guarantees: HOTSAX must agree with brute force, and RRA's
//! pruned search must agree with the exhaustive nearest-neighbour profile
//! over the same candidate set.

use grammarviz::core::{nn_distance_profile, rule_intervals, AnomalyPipeline, PipelineConfig};
use grammarviz::discord::{brute_force_discords, hotsax_discords, HotSaxConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A noisy periodic series with one randomized planted bump.
fn random_series(seed: u64, len: usize) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let period = rng.gen_range(12.0..40.0);
    let mut v: Vec<f64> = (0..len)
        .map(|i| (i as f64 / period).sin() + 0.05 * ((i * 7919 + seed as usize) % 97) as f64 / 97.0)
        .collect();
    let at = rng.gen_range(len / 4..3 * len / 4);
    let blen = rng.gen_range(8..24);
    for i in 0..blen.min(len - at) {
        v[at + i] +=
            rng.gen_range(0.5..1.5) * (std::f64::consts::PI * i as f64 / blen as f64).sin();
    }
    v
}

#[test]
fn hotsax_matches_brute_force_across_seeds() {
    for seed in 0..8u64 {
        let v = random_series(seed, 400);
        let n = 24;
        let (bf, bf_stats) = brute_force_discords(&v, n, 1).unwrap();
        let cfg = HotSaxConfig::new(n, 4, 3).unwrap().with_seed(seed);
        let (hs, hs_stats) = hotsax_discords(&v, &cfg, 1).unwrap();
        assert_eq!(bf[0].position, hs[0].position, "seed {seed}");
        assert!(
            (bf[0].distance - hs[0].distance).abs() < 1e-9,
            "seed {seed}"
        );
        assert!(
            hs_stats.distance_calls <= bf_stats.distance_calls,
            "seed {seed}: HOTSAX may never cost more than brute force"
        );
    }
}

#[test]
fn hotsax_top2_matches_brute_force() {
    let v = random_series(99, 500);
    let (bf, _) = brute_force_discords(&v, 20, 2).unwrap();
    let cfg = HotSaxConfig::new(20, 4, 3).unwrap();
    let (hs, _) = hotsax_discords(&v, &cfg, 2).unwrap();
    assert_eq!(bf.len(), hs.len());
    for (b, h) in bf.iter().zip(&hs) {
        assert_eq!(b.position, h.position);
        assert!((b.distance - h.distance).abs() < 1e-9);
    }
}

#[test]
fn rra_matches_exhaustive_profile_across_seeds() {
    for seed in 0..6u64 {
        let v = random_series(seed + 100, 1200);
        let pipeline = AnomalyPipeline::new(PipelineConfig::new(60, 4, 4).unwrap().with_seed(seed));
        let model = pipeline.model(&v).unwrap();
        let candidates = rule_intervals(&model);
        let report =
            grammarviz::core::rra::discords_from_intervals(&v, &candidates, 1, seed).unwrap();
        let profile = nn_distance_profile(&v, &candidates);
        let max = profile
            .iter()
            .map(|(_, d)| *d)
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(
            (report.discords[0].distance - max).abs() < 1e-9,
            "seed {seed}: pruned search {} vs exhaustive {max}",
            report.discords[0].distance
        );
    }
}

#[test]
fn detectors_agree_through_the_trait() {
    // The same agreement claims, but dispatched through `dyn Detector` —
    // the way the CLI and benches now drive every algorithm.
    use grammarviz::core::{
        BruteForceDetector, Detector, EngineConfig, HotSaxDetector, PipelineConfig, RraDetector,
        SeriesView, Workspace,
    };
    use grammarviz::obs::NoopRecorder;
    let v: Vec<f64> = {
        let mut v: Vec<f64> = (0..3000).map(|i| (i as f64 / 20.0).sin()).collect();
        for (i, x) in v[1500..1580].iter_mut().enumerate() {
            *x = 0.2 * (i as f64 / 5.0).cos();
        }
        v
    };
    let series = SeriesView::new(&v);
    let config = PipelineConfig::new(100, 4, 4).unwrap();
    let detectors: Vec<Box<dyn Detector>> = vec![
        Box::new(BruteForceDetector::new(100, 1)),
        Box::new(HotSaxDetector::new(
            HotSaxConfig::new(100, 4, 4).unwrap(),
            1,
        )),
        Box::new(RraDetector::new(config, 1).with_engine(EngineConfig::sequential())),
    ];
    let mut ws = Workspace::new();
    let reports: Vec<_> = detectors
        .iter()
        .map(|d| d.detect(&series, &mut ws, &NoopRecorder).unwrap())
        .collect();
    // Brute force and HOTSAX agree exactly (same fixed-length problem).
    let (bf, hs) = (&reports[0].anomalies[0], &reports[1].anomalies[0]);
    assert_eq!(bf.interval.start, hs.interval.start);
    assert!((bf.score - hs.score).abs() < 1e-9);
    // All three locate the plant (RRA's length varies; slack one window).
    let plant = grammarviz::timeseries::Interval::new(1400, 1680);
    for (det, report) in detectors.iter().zip(&reports) {
        assert_eq!(report.detector, det.name());
        assert!(
            report.anomalies[0].interval.overlaps(&plant),
            "{} reported {} missing the plant",
            det.name(),
            report.anomalies[0].interval
        );
    }
    // Cost ordering survives the unified interface (the Table 1 claim).
    assert!(reports[2].stats.distance_calls < reports[1].stats.distance_calls);
    assert!(reports[0].stats.distance_calls > reports[1].stats.distance_calls);
}

#[test]
fn rra_cheaper_than_hotsax_on_regular_data() {
    // The headline Table 1 claim, as a regression test.
    let v: Vec<f64> = {
        let mut v: Vec<f64> = (0..4000).map(|i| (i as f64 / 20.0).sin()).collect();
        for (i, x) in v[2000..2080].iter_mut().enumerate() {
            *x = 0.2 * (i as f64 / 5.0).cos();
        }
        v
    };
    let cfg = HotSaxConfig::new(100, 4, 4).unwrap();
    let (_, hs_stats) = hotsax_discords(&v, &cfg, 1).unwrap();
    let pipeline = AnomalyPipeline::new(PipelineConfig::new(100, 4, 4).unwrap());
    let rra = pipeline.rra_discords(&v, 1).unwrap();
    assert!(
        rra.stats.distance_calls < hs_stats.distance_calls / 2,
        "RRA {} vs HOTSAX {}",
        rra.stats.distance_calls,
        hs_stats.distance_calls
    );
}
