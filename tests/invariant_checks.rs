//! End-to-end paper-invariant verification across the workspace: the
//! `gv-check` verifiers must hold on the bundled realistic datasets (not
//! just the synthetic fuzz families), and the edge-case error contracts
//! must bubble unchanged through the top-level `AnomalyPipeline` facade.

use gv_check::{check_series, engine_candidates, CheckReport};
use gva_core::obs::NoopRecorder;
use gva_core::{AnomalyPipeline, Error, PipelineConfig, Workspace};

fn assert_clean(report: &CheckReport, label: &str) {
    assert!(
        report.passed(),
        "{label}: invariant violations\n{}",
        report.render()
    );
}

#[test]
fn invariants_hold_on_realistic_datasets() {
    // The demo parameterizations from the paper's experimental section.
    let cases = [
        (
            gv_datasets::ecg::ecg0606(Default::default()),
            "ecg0606",
            (120, 4, 4),
        ),
        (gv_datasets::video::video_gun(), "video", (150, 5, 3)),
        (gv_datasets::telemetry::tek14(), "tek14", (128, 4, 4)),
    ];
    for (data, label, (w, p, a)) in cases {
        let config = PipelineConfig::new(w, p, a).unwrap();
        for threads in [1, 4] {
            let report = check_series(data.series.values(), &config, 2, threads)
                .unwrap_or_else(|e| panic!("{label}: pipeline failed: {e}"));
            assert_clean(&report, label);
            // 5 model/search checks, +1 parallel-determinism check.
            let expected = if threads > 1 { 6 } else { 5 };
            assert_eq!(report.results.len(), expected, "{label}");
        }
    }
}

#[test]
fn engine_candidate_set_is_nonempty_on_real_data() {
    let data = gv_datasets::ecg::ecg0606(Default::default());
    let config = PipelineConfig::new(120, 4, 4).unwrap();
    let model = Workspace::new()
        .build_model(&config, data.series.values(), &NoopRecorder)
        .unwrap();
    let candidates = engine_candidates(&model);
    assert!(!candidates.is_empty());
    // The boundary filter only ever removes frequency-0 edge runs.
    for c in &candidates {
        assert!(c.rule.is_some() || (c.interval.start > 0 && c.interval.end < model.series_len));
    }
}

#[test]
fn edge_case_errors_bubble_through_the_pipeline_facade() {
    let pipeline = AnomalyPipeline::new(PipelineConfig::new(100, 5, 4).unwrap());
    let mut values: Vec<f64> = (0..500).map(|i| (i as f64 / 16.0).sin()).collect();

    // k = 0 is a typed parameter error from both entry points.
    assert!(matches!(
        pipeline.rra_discords(&values, 0),
        Err(Error::InvalidParameter(_))
    ));
    assert!(matches!(
        pipeline.density_anomalies(&values, 0),
        Err(Error::InvalidParameter(_))
    ));

    // Non-finite input is rejected with the offending index.
    values[321] = f64::NAN;
    assert_eq!(
        pipeline.rra_discords(&values, 1).unwrap_err(),
        Error::NonFiniteInput { index: 321 }
    );
    assert_eq!(
        pipeline.density_anomalies(&values, 1).unwrap_err(),
        Error::NonFiniteInput { index: 321 }
    );

    // A window longer than the series is an error, never a panic.
    let short: Vec<f64> = (0..40).map(|i| i as f64).collect();
    assert!(pipeline.rra_discords(&short, 1).is_err());
    assert!(pipeline.density_anomalies(&short, 1).is_err());
}
