//! Cross-crate instrumentation invariants: recording must never change
//! results, the recorder and `SearchStats` must agree (one counting path),
//! and the JSONL export must round-trip.

use grammarviz::core::obs::{
    CollectingRecorder, Counter, EventKind, LocalRecorder, Metric, NoopRecorder, PipelineTrace,
    Recorder, Stage,
};
use grammarviz::core::{
    rra, rule_intervals, AnomalyPipeline, EngineConfig, PipelineConfig, StreamingDetector,
};

fn fixture() -> Vec<f64> {
    let mut values: Vec<f64> = (0..2000).map(|i| (i as f64 / 20.0).sin()).collect();
    for (i, v) in values[1000..1060].iter_mut().enumerate() {
        *v = (i as f64 / 4.0).sin() * 0.3;
    }
    values
}

fn pipeline() -> AnomalyPipeline {
    // Pinned to one thread: these tests compare cost counters across runs,
    // which is only exact sequentially. The parallel counterpart of the
    // ledger invariant lives in `tests/parallel_determinism.rs`.
    AnomalyPipeline::new(PipelineConfig::new(100, 5, 4).unwrap())
        .with_engine(EngineConfig::sequential())
}

#[test]
fn noop_recorder_leaves_rra_results_identical() {
    let values = fixture();
    let p = pipeline();
    let model = p.model(&values).unwrap();
    let plain = rra::discords(&values, &model, 3, p.config().seed()).unwrap();
    let noop = rra::discords_with(&values, &model, 3, p.config().seed(), &NoopRecorder).unwrap();
    let collecting = CollectingRecorder::new();
    let recorded = rra::discords_with(&values, &model, 3, p.config().seed(), &collecting).unwrap();

    for other in [&noop, &recorded] {
        assert_eq!(plain.discords.len(), other.discords.len());
        for (a, b) in plain.discords.iter().zip(&other.discords) {
            assert_eq!(
                (a.position, a.length, a.rank),
                (b.position, b.length, b.rank)
            );
            assert!((a.distance - b.distance).abs() < 1e-12);
        }
        assert_eq!(plain.stats, other.stats);
        assert_eq!(plain.num_candidates, other.num_candidates);
    }
}

#[test]
fn recorder_and_search_stats_are_one_counting_path() {
    let values = fixture();
    let p = pipeline();
    let rec = CollectingRecorder::new();
    let report = p.rra_discords_with(&values, 2, &rec).unwrap();
    assert!(report.stats.distance_calls > 0);
    assert_eq!(
        rec.counter(Counter::DistanceCalls),
        report.stats.distance_calls
    );
    assert_eq!(
        rec.counter(Counter::EarlyAbandons),
        report.stats.early_abandoned
    );
    assert_eq!(
        rec.counter(Counter::CandidatesPruned),
        report.stats.candidates_pruned
    );
    assert_eq!(
        rec.counter(Counter::CandidatesCompleted),
        report.stats.candidates_completed
    );
    // Same seed, same fixture: a second instrumented run reproduces the
    // counts exactly (the search is deterministic given the seed).
    let rec2 = CollectingRecorder::new();
    let report2 = p.rra_discords_with(&values, 2, &rec2).unwrap();
    assert_eq!(report.stats, report2.stats);
    for c in Counter::ALL {
        assert_eq!(rec.counter(c), rec2.counter(c), "{}", c.name());
    }
}

#[test]
fn candidate_accounting_is_closed() {
    let values = fixture();
    let p = pipeline();
    let rec = CollectingRecorder::new();
    let model = p.model_with(&values, &rec).unwrap();
    rra::discords_with(&values, &model, 1, 0, &rec).unwrap();
    assert!(rec.counter(Counter::RraCandidates) as usize <= rule_intervals(&model).len());
    // Every outer candidate that reached the inner loop either completed
    // or was pruned.
    assert_eq!(
        rec.counter(Counter::RraCandidates),
        rec.counter(Counter::CandidatesPruned) + rec.counter(Counter::CandidatesCompleted)
    );
    // Discretization accounting closes too.
    assert_eq!(rec.counter(Counter::WindowsProcessed), 2000 - 100 + 1);
    assert_eq!(
        rec.counter(Counter::WordsEmitted) + rec.counter(Counter::WordsDropped),
        rec.counter(Counter::WindowsProcessed)
    );
}

/// A tiny flat-JSON parser sufficient for the trace schema (no nested
/// arrays, no escapes in the keys we probe): extracts `"key":value`
/// number fields from anywhere in the line.
fn json_u64(line: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\":");
    let at = line.find(&needle)? + needle.len();
    let rest = &line[at..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

#[test]
fn jsonl_snapshot_round_trips() {
    let values = fixture();
    let p = pipeline();
    let rec = CollectingRecorder::new();
    let report = p.rra_discords_with(&values, 1, &rec).unwrap();
    let trace = rec
        .snapshot("roundtrip")
        .with_param("window", 100)
        .with_param("points", values.len() as u64);

    let dir = std::env::temp_dir().join("gv_obs_integration");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("rt_{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);
    trace.append_jsonl(&path).unwrap();
    trace.append_jsonl(&path).unwrap();

    let body = std::fs::read_to_string(&path).unwrap();
    let lines: Vec<&str> = body.lines().collect();
    assert_eq!(lines.len(), 2);
    for line in lines {
        assert!(line.starts_with('{') && line.ends_with('}'));
        assert_eq!(json_u64(line, "window"), Some(100));
        assert_eq!(json_u64(line, "points"), Some(2000));
        assert_eq!(
            json_u64(line, "distance_calls"),
            Some(report.stats.distance_calls)
        );
        assert_eq!(
            json_u64(line, "windows_processed"),
            Some(trace.counter(Counter::WindowsProcessed))
        );
        assert_eq!(json_u64(line, "total_ns"), Some(trace.total_nanos()));
        // Every stage key is present even when zero.
        for stage in Stage::ALL {
            assert_eq!(
                json_u64(line, stage.name()),
                Some(trace.stage_nanos(stage)),
                "{}",
                stage.name()
            );
        }
    }
    std::fs::remove_file(&path).unwrap();

    // And the parsed record matches an in-memory re-encode.
    assert_eq!(
        trace.to_jsonl(),
        PipelineTrace { ..trace.clone() }.to_jsonl()
    );
}

#[test]
fn jsonl_exports_carry_schema_version() {
    let values = fixture();
    let p = pipeline();
    let rec = CollectingRecorder::new();
    p.rra_discords_with(&values, 1, &rec).unwrap();
    let trace_line = rec.snapshot("schema").to_jsonl();
    assert!(trace_line.starts_with("{\"schema\":4,"), "{trace_line}");
    assert!(trace_line.contains("\"histograms\":{"), "{trace_line}");
    assert_eq!(json_u64(&trace_line, "schema"), Some(4));

    let explain = p.explain(&values, 1).unwrap();
    assert_eq!(json_u64(&explain.rows[0].to_jsonl(), "schema"), Some(4));
    assert_eq!(json_u64(&explain.summary_jsonl(), "schema"), Some(4));
    assert!(!explain.events.is_empty());
    for event in &explain.events {
        assert_eq!(json_u64(&event.to_jsonl(), "schema"), Some(4));
    }
}

/// The level-2 acceptance invariant: the per-decision event stream is a
/// complete, independent ledger of the search's distance-call spend.
#[test]
fn explain_event_ledger_matches_search_stats() {
    let values = fixture();
    let p = pipeline();
    let rec = CollectingRecorder::new();
    let report = p.rra_discords_with(&values, 2, &rec).unwrap();
    let explain = p
        .explain_with(&values, 2, &CollectingRecorder::new())
        .unwrap();

    // Same deterministic search → identical stats; outcome-event deltas
    // reconstruct the total exactly.
    assert_eq!(explain.stats, report.stats);
    assert_eq!(explain.events_dropped, 0);
    assert_eq!(
        explain.distance_calls_from_events(),
        report.stats.distance_calls
    );
    // Histogram mass agrees with the counters too.
    assert_eq!(explain.distance_ns.count(), report.stats.distance_calls);
    assert_eq!(explain.abandon_pos.count(), report.stats.early_abandoned);
    // One Visited event per outer candidate take-up, one outcome each.
    let visited = explain
        .events
        .iter()
        .filter(|e| e.kind == EventKind::Visited)
        .count() as u64;
    let outcomes = explain
        .events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::Pruned | EventKind::Completed))
        .count() as u64;
    assert_eq!(visited, outcomes);
    assert_eq!(visited, rec.counter(Counter::RraCandidates));
}

/// Streaming detector results must be byte-identical across recorder
/// choices, and the Noop path must never see the per-call clock.
#[test]
fn streaming_detector_is_recorder_neutral() {
    let signal = |i: usize| {
        if (900..960).contains(&i) {
            0.0
        } else {
            (i as f64 / 12.0).sin()
        }
    };
    let config = PipelineConfig::new(50, 4, 4).unwrap();

    let mut noop = StreamingDetector::new(config.clone());
    let mut local = StreamingDetector::with_recorder(config.clone(), LocalRecorder::new());
    let shared = CollectingRecorder::new();
    let mut collecting = StreamingDetector::with_recorder(config.clone(), shared.clone());
    for i in 0..1500usize {
        let v = signal(i);
        noop.push(v).unwrap();
        local.push(v).unwrap();
        collecting.push(v).unwrap();
    }

    // Byte-identical curves and alert rankings across all three recorders.
    let reference = noop.density_curve();
    assert_eq!(reference, local.density_curve());
    assert_eq!(reference, collecting.density_curve());
    let ref_alerts = noop.alerts(0, 100);
    assert!(!ref_alerts.is_empty());
    assert_eq!(ref_alerts, local.alerts(0, 100));
    assert_eq!(ref_alerts, collecting.alerts(0, 100));

    // Noop is statically detail-free: no clock reads on the value path.
    assert!(!NoopRecorder.detailed());
    assert!(!LocalRecorder::counters_only().detailed());

    // A Collecting sink shared across threads tallies both streams.
    let shared = CollectingRecorder::new();
    std::thread::scope(|scope| {
        for _ in 0..2 {
            let sink = shared.clone();
            let config = config.clone();
            scope.spawn(move || {
                let mut det = StreamingDetector::with_recorder(config, sink).metrics_every(500);
                for i in 0..1500usize {
                    det.push(signal(i)).unwrap();
                }
                assert_eq!(det.snapshots().len(), 3);
            });
        }
    });
    assert_eq!(
        shared.counter(Counter::WindowsProcessed),
        2 * (1500 - 50 + 1)
    );
    assert_eq!(
        shared.counter(Counter::WordsEmitted) + shared.counter(Counter::WordsDropped),
        shared.counter(Counter::WindowsProcessed)
    );
    // Each thread flushed 3 periodic snapshots → 6 Flush events.
    let flushes = shared
        .events_vec()
        .iter()
        .filter(|e| e.kind == EventKind::Flush)
        .count();
    assert_eq!(flushes, 6);
}

/// Detailed recorders get the per-call latency histogram; plain counters
/// recorders stay histogram-free (the zero-overhead contract, level 2).
#[test]
fn detail_gating_controls_histograms() {
    let values = fixture();
    let p = pipeline();

    let detailed = LocalRecorder::new();
    p.rra_discords_with(&values, 1, &detailed).unwrap();
    assert!(detailed.histogram(Metric::DistanceNanos).count() > 0);
    assert!(detailed.histogram(Metric::CandidateLen).count() > 0);

    let counters_only = LocalRecorder::counters_only();
    p.rra_discords_with(&values, 1, &counters_only).unwrap();
    assert_eq!(counters_only.histogram(Metric::DistanceNanos).count(), 0);
    assert!(counters_only.events().is_empty());
    // But the aggregate counters still flowed.
    assert!(counters_only.counter(Counter::DistanceCalls) > 0);
    assert_eq!(
        counters_only.counter(Counter::DistanceCalls),
        detailed.counter(Counter::DistanceCalls)
    );
}
