//! Cross-crate property tests: invariants that must hold for the whole
//! SAX → Sequitur → detection stack on arbitrary inputs.

use grammarviz::core::{rule_intervals, AnomalyPipeline, PipelineConfig, RuleDensity};
use grammarviz::sax::{mindist, NumerosityReduction, SaxConfig};
use grammarviz::timeseries::{znorm, CoverageCounter, DEFAULT_ZNORM_THRESHOLD};
use proptest::prelude::*;

/// Random-walk series generator: realistic smooth inputs for SAX.
fn random_walk(steps: Vec<f64>) -> Vec<f64> {
    let mut acc = 0.0;
    steps
        .into_iter()
        .map(|s| {
            acc += s;
            acc
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The grammar induced over any discretized random walk satisfies the
    /// Sequitur invariants and round-trips to the token stream.
    #[test]
    fn grammar_invariants_over_pipeline(
        steps in proptest::collection::vec(-1.0f64..1.0, 300..800),
        window in 20usize..60,
        paa in 3usize..6,
        alphabet in 3usize..6,
    ) {
        let values = random_walk(steps);
        prop_assume!(values.len() >= 2 * window);
        let pipeline = AnomalyPipeline::new(
            PipelineConfig::new(window, paa, alphabet).unwrap(),
        );
        let model = pipeline.model(&values).unwrap();
        let tokens: Vec<u32> = model
            .records
            .iter()
            .map(|r| model.dictionary.token_of(&r.word).unwrap())
            .collect();
        prop_assert_eq!(model.grammar.verify(&tokens), None);
    }

    /// The density curve from the model equals naive per-point counting
    /// over the same occurrence intervals.
    #[test]
    fn density_curve_matches_naive_counting(
        steps in proptest::collection::vec(-1.0f64..1.0, 300..700),
        window in 20usize..50,
    ) {
        let values = random_walk(steps);
        prop_assume!(values.len() >= 2 * window);
        let pipeline = AnomalyPipeline::new(PipelineConfig::new(window, 4, 4).unwrap());
        let model = pipeline.model(&values).unwrap();
        let curve = RuleDensity::from_model(&model);

        let mut naive = vec![0i64; values.len()];
        for occ in model.grammar.occurrences() {
            let iv = model.occurrence_interval(&occ);
            for slot in naive.iter_mut().take(iv.end).skip(iv.start) {
                *slot += 1;
            }
        }
        prop_assert_eq!(curve.curve(), &naive[..]);
        // Sanity: a CoverageCounter over the same intervals agrees too.
        let mut cc = CoverageCounter::new(values.len());
        for occ in model.grammar.occurrences() {
            cc.add(model.occurrence_interval(&occ));
        }
        prop_assert_eq!(cc.finish(), naive);
    }

    /// MINDIST lower-bounds the true Euclidean distance between the
    /// z-normalized subsequences it symbolizes (the SAX guarantee).
    #[test]
    fn mindist_lower_bounds_euclidean(
        steps in proptest::collection::vec(-1.0f64..1.0, 160..320),
        paa in 3usize..8,
        alphabet in 3usize..8,
        split in 0.25f64..0.75,
    ) {
        let values = random_walk(steps);
        let n = 64usize;
        prop_assume!(values.len() >= 2 * n);
        let p = 0;
        let q = ((values.len() - n) as f64 * split) as usize;
        let a_raw = &values[p..p + n];
        let b_raw = &values[q..q + n];
        let cfg = SaxConfig::new(n, paa, alphabet).unwrap();
        let wa = cfg.word(a_raw).unwrap();
        let wb = cfg.word(b_raw).unwrap();
        let lower = mindist(&wa, &wb, cfg.alphabet(), n);

        let az = znorm(a_raw, DEFAULT_ZNORM_THRESHOLD);
        let bz = znorm(b_raw, DEFAULT_ZNORM_THRESHOLD);
        let true_dist: f64 = az
            .iter()
            .zip(&bz)
            .map(|(x, y)| (x - y) * (x - y))
            .sum::<f64>()
            .sqrt();
        // Tiny epsilon absorbs floating-point noise in the breakpoints.
        prop_assert!(
            lower <= true_dist + 1e-9,
            "MINDIST {lower} > Euclidean {true_dist}"
        );
    }

    /// Every RRA candidate interval is in bounds, non-empty, and its
    /// frequency is consistent with its provenance.
    #[test]
    fn rra_candidates_well_formed(
        steps in proptest::collection::vec(-1.0f64..1.0, 300..700),
        window in 20usize..50,
    ) {
        let values = random_walk(steps);
        prop_assume!(values.len() >= 2 * window);
        let pipeline = AnomalyPipeline::new(PipelineConfig::new(window, 4, 4).unwrap());
        let model = pipeline.model(&values).unwrap();
        for c in rule_intervals(&model) {
            prop_assert!(!c.interval.is_empty());
            prop_assert!(c.interval.end <= values.len());
            match c.rule {
                Some(_) => prop_assert!(c.frequency >= 1),
                None => prop_assert_eq!(c.frequency, 0),
            }
        }
    }

    /// Numerosity reduction never changes the *first* record and always
    /// yields a subsequence of the unreduced stream.
    #[test]
    fn numerosity_reduction_is_a_subsequence(
        steps in proptest::collection::vec(-1.0f64..1.0, 200..500),
        window in 16usize..48,
    ) {
        let values = random_walk(steps);
        prop_assume!(values.len() >= window + 10);
        let cfg = SaxConfig::new(window, 4, 4).unwrap();
        let full = cfg.discretize(&values, NumerosityReduction::None).unwrap();
        let reduced = cfg.discretize(&values, NumerosityReduction::Exact).unwrap();
        prop_assert_eq!(&reduced[0], &full[0]);
        // Two-pointer subsequence check on (word, offset) pairs.
        let mut it = full.iter();
        for r in &reduced {
            prop_assert!(
                it.any(|f| f == r),
                "reduced record missing from the full stream"
            );
        }
    }
}
